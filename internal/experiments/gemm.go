package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"time"

	"deepmd-go/internal/tensor"
	"deepmd-go/internal/tensor/cpufeat"
)

// GemmRow is one shape of the GEMM kernel ablation: the naive serial
// reference and the portable blocked engine (forced-generic, the pre-SIMD
// execution path) against the runtime-dispatched SIMD kernels, serial,
// parallel and with the fused bias+tanh+gradient epilogue.
type GemmRow struct {
	Label   string
	M, K, N int
	Naive   time.Duration // best-of-reps, naive serial
	Blocked time.Duration // best-of-reps, blocked engine with family forced to generic
	SIMD    time.Duration // best-of-reps, active-family SIMD kernels, serial
	Par     time.Duration // best-of-reps, SIMD with Workers goroutines
	Fused2P time.Duration // bias+tanh+grad operator, forced-generic two-pass
	Fused   time.Duration // bias+tanh+grad operator, fused SIMD epilogue
	MaxDiff float64       // max |simd - naive| over C (tolerance sanity)
}

// GemmResult is the `dpbench -exp gemm` kernel ablation: the tensor
// layer's ablation of the Sec. 5.3.1 observation that GEMM dominates the
// per-step cost. Shapes follow the paper's layers — the tall-skinny
// embedding GEMMs M x 1 x 25, M x 25 x 50, M x 50 x 100 at neighbor-row
// counts M in {1e3, 1e4, 1e5} (the 1e5 tier under -full) — plus the
// fitting net's 240 x 240 hidden layer. Kernel names which SIMD family
// executed the SIMD/Par/Fused columns.
type GemmResult struct {
	Workers int
	Kernel  string
	Rows    []GemmRow
}

// GemmKernels times the kernel families on the paper's layer shapes. The
// SIMD result is verified against the naive reference (MaxDiff reported),
// and the parallel run is required to be bit-identical to the serial SIMD
// run, mirroring the differential tests. The blocked column forces the
// kernel family to generic for the duration of its timing, so it measures
// the portable engine the repo shipped before the assembly kernels — the
// speedup baseline in BENCH_PR8.json.
func GemmKernels(sc Scale, workers int) (*GemmResult, error) {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	mTiers, fitRows, reps := []int{1e3, 1e4}, 512, 5
	if sc == Full {
		mTiers, fitRows, reps = []int{1e3, 1e4, 1e5}, 4096, 3
	}
	type shape struct {
		label   string
		m, k, n int
	}
	var shapes []shape
	for _, mt := range mTiers {
		shapes = append(shapes,
			// Embedding layer 1 consumes one s(r) value per neighbor
			// slot: K = 1 documents the dispatch policy at the thinnest
			// reduction the tall-skinny kernels accept.
			shape{fmt.Sprintf("embed 1->25 M=%d", mt), mt, 1, 25},
			shape{fmt.Sprintf("embed 25->50 M=%d", mt), mt, 25, 50},
			shape{fmt.Sprintf("embed 50->100 M=%d", mt), mt, 50, 100},
		)
	}
	shapes = append(shapes, shape{"fitting 240x240", fitRows, 240, 240})

	res := &GemmResult{Workers: workers, Kernel: tensor.KernelInfo().Family}
	for si, s := range shapes {
		rng := rand.New(rand.NewSource(int64(1 + si)))
		a := tensor.NewMatrix[float64](s.m, s.k)
		b := tensor.NewMatrix[float64](s.k, s.n)
		bias := make([]float64, s.n)
		for i := range a.Data {
			a.Data[i] = rng.NormFloat64()
		}
		for i := range b.Data {
			b.Data[i] = rng.NormFloat64()
		}
		for i := range bias {
			bias[i] = rng.NormFloat64()
		}
		cRef := tensor.NewMatrix[float64](s.m, s.n)
		cVar := tensor.NewMatrix[float64](s.m, s.n)
		cPar := tensor.NewMatrix[float64](s.m, s.n)
		row := GemmRow{Label: s.label, M: s.m, K: s.k, N: s.n}
		timeGemm := func(o tensor.Opts, c tensor.Matrix[float64]) time.Duration {
			best := time.Duration(0)
			for r := 0; r < reps; r++ {
				start := time.Now()
				tensor.GemmOpt(o, nil, 1, a, b, 0, c)
				if el := time.Since(start); best == 0 || el < best {
					best = el
				}
			}
			return best
		}
		timeFused := func(o tensor.Opts, y, grad tensor.Matrix[float64]) time.Duration {
			best := time.Duration(0)
			for r := 0; r < reps; r++ {
				start := time.Now()
				tensor.GemmBiasTanhGradOpt(o, nil, a, b, bias, y, grad)
				if el := time.Since(start); best == 0 || el < best {
					best = el
				}
			}
			return best
		}
		row.Naive = timeGemm(tensor.Opts{Kernel: tensor.Naive}, cRef)
		var err error
		row.Blocked, err = withFamily(cpufeat.Generic, func() time.Duration {
			return timeGemm(tensor.Opts{}, cVar)
		})
		if err != nil {
			return nil, err
		}
		row.SIMD = timeGemm(tensor.Opts{}, cVar)
		row.Par = timeGemm(tensor.Opts{Workers: workers}, cPar)
		for i := range cRef.Data {
			if d := math.Abs(cVar.Data[i] - cRef.Data[i]); d > row.MaxDiff {
				row.MaxDiff = d
			}
			if cPar.Data[i] != cVar.Data[i] {
				return nil, fmt.Errorf("experiments: gemm %s: workers=%d not bit-identical to serial at element %d", s.label, workers, i)
			}
		}
		// The fused operator reuses the verification matrices as its
		// activation/gradient outputs; all cross-variant checks are done.
		row.Fused2P, err = withFamily(cpufeat.Generic, func() time.Duration {
			return timeFused(tensor.Opts{}, cRef, cPar)
		})
		if err != nil {
			return nil, err
		}
		row.Fused = timeFused(tensor.Opts{}, cRef, cPar)
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// withFamily runs f with the kernel family forced to fam, restoring the
// previous selection afterwards.
func withFamily(fam cpufeat.Family, f func() time.Duration) (time.Duration, error) {
	prev := cpufeat.Active()
	//dp:allow dispatch the family sweep is this experiment's purpose; Active() is restored below
	if _, err := cpufeat.SetActive(fam); err != nil {
		return 0, fmt.Errorf("experiments: forcing %v kernels: %w", fam, err)
	}
	//dp:allow dispatch restores the selection captured above
	defer cpufeat.SetActive(prev)
	return f(), nil
}

func gflops(m, k, n int, d time.Duration) string {
	if d <= 0 {
		return "-"
	}
	return fmt.Sprintf("%.2f", 2*float64(m)*float64(k)*float64(n)/d.Seconds()/1e9)
}

func (r *GemmResult) String() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, w := range r.Rows {
		rows = append(rows, []string{
			w.Label,
			fmt.Sprintf("%dx%dx%d", w.M, w.K, w.N),
			gflops(w.M, w.K, w.N, w.Naive),
			gflops(w.M, w.K, w.N, w.Blocked),
			gflops(w.M, w.K, w.N, w.SIMD),
			gflops(w.M, w.K, w.N, w.Par),
			fmt.Sprintf("%.2f", ratio(w.Blocked, w.SIMD)),
			fmt.Sprintf("%.2f", ratio(w.Naive, w.SIMD)),
			fmt.Sprintf("%.2f", ratio(w.Fused2P, w.Fused)),
			fmt.Sprintf("%.1e", w.MaxDiff),
		})
	}
	return fmt.Sprintf("GEMM kernels: naive vs generic blocked vs %s SIMD (serial and x %d workers, GFLOPS; parallel verified bit-identical to serial)\n", r.Kernel, r.Workers) +
		table([]string{"layer", "MxKxN", "naive", "generic", r.Kernel, fmt.Sprintf("%s x%d", r.Kernel, r.Workers), "vs generic", "vs naive", "fused gain", "max|diff|"}, rows)
}

// Records emits the machine-readable perf trajectory rows. Speedup stays
// relative to the naive reference (the convention of every BENCH file);
// the vs-generic ratio of the SIMD kernels is derivable from the
// ns_per_op of the /blocked and /simd rows, which share a shape key.
func (r *GemmResult) Records() []Record {
	var recs []Record
	for _, w := range r.Rows {
		shape := fmt.Sprintf("%s-%dx%dx%d", w.Label, w.M, w.K, w.N)
		recs = append(recs,
			Record{Experiment: "gemm", Shape: shape + "/naive", NsPerOp: float64(w.Naive.Nanoseconds()), Speedup: 1, Kernel: "naive"},
			Record{Experiment: "gemm", Shape: shape + "/blocked", NsPerOp: float64(w.Blocked.Nanoseconds()), Speedup: ratio(w.Naive, w.Blocked), Kernel: "generic"},
			Record{Experiment: "gemm", Shape: shape + "/simd", NsPerOp: float64(w.SIMD.Nanoseconds()), Speedup: ratio(w.Naive, w.SIMD), Kernel: r.Kernel},
			Record{Experiment: "gemm", Shape: fmt.Sprintf("%s/simd-w%d", shape, r.Workers), NsPerOp: float64(w.Par.Nanoseconds()), Speedup: ratio(w.Naive, w.Par), Kernel: r.Kernel},
			Record{Experiment: "gemm", Shape: shape + "/fused-twopass", NsPerOp: float64(w.Fused2P.Nanoseconds()), Speedup: 1, Kernel: "generic"},
			Record{Experiment: "gemm", Shape: shape + "/fused", NsPerOp: float64(w.Fused.Nanoseconds()), Speedup: ratio(w.Fused2P, w.Fused), Kernel: r.Kernel},
		)
	}
	return recs
}
