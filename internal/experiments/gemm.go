package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"time"

	"deepmd-go/internal/tensor"
)

// GemmRow is one shape of the GEMM kernel ablation: the naive serial
// reference against the blocked kernel, serial and with the worker pool.
type GemmRow struct {
	Label   string
	M, K, N int
	Naive   time.Duration // best-of-reps, naive serial
	Blocked time.Duration // best-of-reps, blocked serial
	Par     time.Duration // best-of-reps, blocked with Workers goroutines
	MaxDiff float64       // max |blocked - naive| over C (tolerance sanity)
}

// GemmResult is the `dpbench -exp gemm` kernel ablation (ISSUE 2): the
// tensor layer's ablation of the Sec. 5.3.1 observation that GEMM
// dominates the per-step cost. Shapes follow the paper's layers: the
// batched embedding GEMMs (rows = atoms x sel with sel 46/92 for water
// O/H, widths 1->25->50->100) and the fitting net's 240x240 hidden layers.
type GemmResult struct {
	Workers int
	Rows    []GemmRow
}

// GemmKernels times naive vs blocked (serial and parallel) on the paper's
// layer shapes. Blocked results are verified against the naive reference
// (MaxDiff reported) and the parallel run is required to be bit-identical
// to the serial blocked run, mirroring the differential tests.
func GemmKernels(sc Scale, workers int) (*GemmResult, error) {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	atoms, fitRows, reps := 64, 512, 5
	if sc == Full {
		atoms, fitRows, reps = 256, 4096, 3
	}
	shapes := []struct {
		label   string
		m, k, n int
	}{
		// Embedding layer 1 consumes one s(r) value per neighbor slot:
		// K = 1 sits below the blocked cutoff and documents the dispatch
		// policy (blocked == naive there).
		{"embed O s->25", atoms * 46, 1, 25},
		{"embed H s->25", atoms * 92, 1, 25},
		{"embed 25->50", atoms * 46, 25, 50},
		{"embed 50->100", atoms * 46, 50, 100},
		{"fitting 240x240", fitRows, 240, 240},
	}
	res := &GemmResult{Workers: workers}
	for si, s := range shapes {
		rng := rand.New(rand.NewSource(int64(1 + si)))
		a := tensor.NewMatrix[float64](s.m, s.k)
		b := tensor.NewMatrix[float64](s.k, s.n)
		for i := range a.Data {
			a.Data[i] = rng.NormFloat64()
		}
		for i := range b.Data {
			b.Data[i] = rng.NormFloat64()
		}
		cNaive := tensor.NewMatrix[float64](s.m, s.n)
		cBlk := tensor.NewMatrix[float64](s.m, s.n)
		cPar := tensor.NewMatrix[float64](s.m, s.n)
		row := GemmRow{Label: s.label, M: s.m, K: s.k, N: s.n}
		time3 := func(o tensor.Opts, c tensor.Matrix[float64]) time.Duration {
			best := time.Duration(0)
			for r := 0; r < reps; r++ {
				start := time.Now()
				tensor.GemmOpt(o, nil, 1, a, b, 0, c)
				if el := time.Since(start); best == 0 || el < best {
					best = el
				}
			}
			return best
		}
		row.Naive = time3(tensor.Opts{Kernel: tensor.Naive}, cNaive)
		row.Blocked = time3(tensor.Opts{Kernel: tensor.Blocked}, cBlk)
		row.Par = time3(tensor.Opts{Kernel: tensor.Blocked, Workers: workers}, cPar)
		for i := range cNaive.Data {
			if d := math.Abs(cBlk.Data[i] - cNaive.Data[i]); d > row.MaxDiff {
				row.MaxDiff = d
			}
			if cPar.Data[i] != cBlk.Data[i] {
				return nil, fmt.Errorf("experiments: gemm %s: workers=%d not bit-identical to serial blocked at element %d", s.label, workers, i)
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

func gflops(m, k, n int, d time.Duration) string {
	if d <= 0 {
		return "-"
	}
	return fmt.Sprintf("%.2f", 2*float64(m)*float64(k)*float64(n)/d.Seconds()/1e9)
}

func (r *GemmResult) String() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, w := range r.Rows {
		rows = append(rows, []string{
			w.Label,
			fmt.Sprintf("%dx%dx%d", w.M, w.K, w.N),
			gflops(w.M, w.K, w.N, w.Naive),
			gflops(w.M, w.K, w.N, w.Blocked),
			gflops(w.M, w.K, w.N, w.Par),
			fmt.Sprintf("%.2f", float64(w.Naive)/float64(w.Blocked)),
			fmt.Sprintf("%.2f", float64(w.Naive)/float64(w.Par)),
			fmt.Sprintf("%.1e", w.MaxDiff),
		})
	}
	return fmt.Sprintf("GEMM kernels: naive serial vs blocked vs blocked x %d workers (GFLOPS; parallel verified bit-identical to serial blocked)\n", r.Workers) +
		table([]string{"layer", "MxKxN", "naive", "blocked", fmt.Sprintf("blk x%d", r.Workers), "speedup", "par speedup", "max|diff|"}, rows)
}

// Records emits the machine-readable perf trajectory rows.
func (r *GemmResult) Records() []Record {
	var recs []Record
	for _, w := range r.Rows {
		shape := fmt.Sprintf("%s-%dx%dx%d", w.Label, w.M, w.K, w.N)
		recs = append(recs,
			Record{Experiment: "gemm", Shape: shape + "/naive", NsPerOp: float64(w.Naive.Nanoseconds()), Speedup: 1},
			Record{Experiment: "gemm", Shape: shape + "/blocked", NsPerOp: float64(w.Blocked.Nanoseconds()), Speedup: ratio(w.Naive, w.Blocked)},
			Record{Experiment: "gemm", Shape: fmt.Sprintf("%s/blocked-w%d", shape, r.Workers), NsPerOp: float64(w.Par.Nanoseconds()), Speedup: ratio(w.Naive, w.Par)},
		)
	}
	return recs
}
