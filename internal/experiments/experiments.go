// Package experiments regenerates every table and figure of the paper's
// evaluation section. Each experiment returns a structured result with a
// String method that prints rows shaped like the paper's; cmd/dpbench and
// the repository-level benchmarks are thin wrappers over this package.
//
// Experiments that need Summit-scale hardware combine local measurement
// (the algorithmic contrasts: baseline vs optimized operators, fused vs
// unfused graphs, double vs mixed precision) with the calibrated
// performance model of internal/perfmodel (the full-machine scaling
// numbers), per the substitution policy in DESIGN.md.
package experiments

import (
	"fmt"
	"strings"
	"time"

	"deepmd-go/internal/core"
	"deepmd-go/internal/lattice"
	"deepmd-go/internal/neighbor"
	"deepmd-go/internal/units"
)

// Scale selects experiment sizing.
type Scale int

const (
	// Quick shrinks systems and networks so every experiment finishes in
	// seconds on one CPU core (used by tests).
	Quick Scale = iota
	// Full uses the paper's network geometry with the largest system
	// that remains practical on a CPU.
	Full
)

// waterModelConfig returns a water-like two-type model at the given scale.
func waterModelConfig(sc Scale) core.Config {
	if sc == Full {
		cfg := core.WaterConfig()
		cfg.ChunkSize = 128
		return cfg
	}
	cfg := core.TinyConfig(2)
	cfg.TypeNames = []string{"O", "H"}
	cfg.Masses = []float64{units.MassO, units.MassH}
	cfg.Rcut = 4.0
	cfg.RcutSmth = 0.5
	cfg.Skin = 1.0
	cfg.Sel = []int{12, 24}
	return cfg
}

// copperModelConfig returns a copper-like one-type model at the given
// scale.
func copperModelConfig(sc Scale) core.Config {
	if sc == Full {
		cfg := core.CopperConfig()
		cfg.ChunkSize = 64
		return cfg
	}
	cfg := core.TinyConfig(1)
	cfg.TypeNames = []string{"Cu"}
	cfg.Masses = []float64{units.MassCu}
	cfg.Rcut = 5.0
	cfg.RcutSmth = 2.0
	cfg.Skin = 1.0
	// Copper's padded neighbor capacity is much larger than water's
	// relative to the box (500 vs 138 in the paper); Quick keeps the same
	// character so the Fig. 3 GEMM-share ordering holds.
	cfg.Sel = []int{110}
	return cfg
}

// waterBox builds a water system and its raw neighbor list for a model.
func waterBox(cfg *core.Config, nx int, seed int64) ([]float64, []int, *neighbor.List, *neighbor.Box, error) {
	cell := lattice.Water(nx, nx, nx, lattice.WaterSpacing, seed)
	// The box must satisfy the minimum-image requirement.
	for k := 0; k < 3; k++ {
		if cell.Box.L[k] < 2*(cfg.Rcut+cfg.Skin) {
			return nil, nil, nil, nil, fmt.Errorf("experiments: water box %d^3 too small for rcut %.1f", nx, cfg.Rcut)
		}
	}
	spec := neighbor.Spec{Rcut: cfg.Rcut, Skin: cfg.Skin, Sel: cfg.Sel}
	list, err := neighbor.Build(spec, cell.Pos, cell.Types, cell.N(), &cell.Box, cfg.Workers)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	return cell.Pos, cell.Types, list, &cell.Box, nil
}

// copperBox builds an FCC copper system and list for a model.
func copperBox(cfg *core.Config, nx int) ([]float64, []int, *neighbor.List, *neighbor.Box, error) {
	cell := lattice.FCC(nx, nx, nx, lattice.CuLatticeConst)
	lattice.Perturb(cell, 0.05, 3)
	for k := 0; k < 3; k++ {
		if cell.Box.L[k] < 2*(cfg.Rcut+cfg.Skin) {
			return nil, nil, nil, nil, fmt.Errorf("experiments: copper box %d^3 too small for rcut %.1f", nx, cfg.Rcut)
		}
	}
	spec := neighbor.Spec{Rcut: cfg.Rcut, Skin: cfg.Skin, Sel: cfg.Sel}
	list, err := neighbor.Build(spec, cell.Pos, cell.Types, cell.N(), &cell.Box, cfg.Workers)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	return cell.Pos, cell.Types, list, &cell.Box, nil
}

// table prints an aligned text table.
func table(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			fmt.Fprintf(&sb, "%-*s  ", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	line(header)
	for i, w := range widths {
		header[i] = strings.Repeat("-", w)
	}
	line(header)
	for _, r := range rows {
		line(r)
	}
	return sb.String()
}

func ms(d time.Duration) string {
	return fmt.Sprintf("%.2f", float64(d.Microseconds())/1000)
}
