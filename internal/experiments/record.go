package experiments

// Record is one machine-readable benchmark measurement. `dpbench -json`
// collects these from every experiment that implements Recorder and prints
// a JSON array, so the performance trajectory can be committed as
// BENCH_*.json files and tracked across PRs (and uploaded as a CI
// artifact).
type Record struct {
	// Experiment is the dpbench experiment name (e.g. "gemm", "batch").
	Experiment string `json:"experiment"`
	// Shape identifies the measured configuration within the experiment
	// (layer shape, system, worker count).
	Shape string `json:"shape"`
	// NsPerOp is the best-of-reps wall time per operation in nanoseconds.
	NsPerOp float64 `json:"ns_per_op"`
	// Speedup is the ratio against the experiment's reference variant
	// (1 for the reference itself; 0 when not applicable).
	Speedup float64 `json:"speedup,omitempty"`
	// P50Ns/P95Ns/P99Ns are per-request latency percentiles in
	// nanoseconds, emitted by experiments that measure a latency
	// distribution rather than a single per-op time (the `load`
	// experiment); zero elsewhere.
	P50Ns float64 `json:"p50_ns,omitempty"`
	P95Ns float64 `json:"p95_ns,omitempty"`
	P99Ns float64 `json:"p99_ns,omitempty"`
	// Kernel attributes the measurement to the SIMD kernel family that
	// executed it ("avx512", "avx2", "neon", "generic", "naive"); empty
	// for experiments that don't dispatch through the kernel tables.
	Kernel string `json:"kernel,omitempty"`
	// Messages, LogicalBytes and WireBytes are the communication volume of
	// a distributed experiment: message count, codec-exact payload bytes,
	// and actual framed socket bytes (LogicalBytes + header×Messages).
	// Zero for single-process experiments.
	Messages     int64 `json:"messages,omitempty"`
	LogicalBytes int64 `json:"logical_bytes,omitempty"`
	WireBytes    int64 `json:"wire_bytes,omitempty"`
	// Overlap is the mean comm/compute overlap fraction of the per-step
	// halo exchange across ranks (1 = fully hidden behind local work).
	Overlap float64 `json:"overlap,omitempty"`
}

// Recorder is implemented by experiment results that can report their
// measurements as machine-readable records.
type Recorder interface {
	Records() []Record
}
