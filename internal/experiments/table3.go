package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"deepmd-go/internal/descriptor"
	"deepmd-go/internal/neighbor"
)

// Table3Result reproduces Table 3: per-operator time of the baseline
// customized operators vs the optimized ones, on a water configuration.
// The paper measures a CPU baseline against GPU kernels (130x/38x/17x);
// here both run on the CPU, so the expected shape is optimized >> baseline
// with Environment showing the largest gain (it contains the sort).
type Table3Result struct {
	Atoms int
	Rows  []Table3Row
}

// Table3Row is one operator's timing.
type Table3Row struct {
	Op        string
	Baseline  time.Duration
	Optimized time.Duration
}

// Speedup returns baseline/optimized.
func (r Table3Row) Speedup() float64 {
	if r.Optimized == 0 {
		return 0
	}
	return float64(r.Baseline) / float64(r.Optimized)
}

// Table3 measures the three customized operators. nx is the water box
// edge in molecules; reps averages repetitions.
func Table3(sc Scale, nx, reps int) (*Table3Result, error) {
	cfg := waterModelConfig(sc)
	dcfg := descriptor.Config{Rcut: cfg.Rcut, RcutSmth: cfg.RcutSmth, Sel: cfg.Sel}
	pos, types, list, box, err := waterBox(&cfg, nx, 1)
	if err != nil {
		return nil, err
	}
	n := len(types)
	res := &Table3Result{Atoms: n}

	// Prepare a shared environment output and a random network gradient
	// for the force/virial operators.
	var sc2 descriptor.Scratch
	env, err := sc2.Environment(nil, dcfg, pos, types, list, box)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(2))
	nd := make([]float64, env.Nloc*env.Stride*4)
	for i := range nd {
		nd[i] = rng.NormFloat64()
	}
	force := make([]float64, 3*n)

	timeIt := func(f func()) time.Duration {
		start := time.Now()
		for r := 0; r < reps; r++ {
			f()
		}
		return time.Since(start) / time.Duration(reps)
	}

	var scratch descriptor.Scratch
	envBase := timeIt(func() {
		if _, err := descriptor.EnvironmentBaseline(nil, dcfg, pos, types, list, box); err != nil {
			panic(err)
		}
	})
	envOpt := timeIt(func() {
		if _, err := scratch.Environment(nil, dcfg, pos, types, list, box); err != nil {
			panic(err)
		}
	})
	res.Rows = append(res.Rows, Table3Row{"Environment", envBase, envOpt})

	virBase := timeIt(func() { descriptor.ProdVirialBaseline(nil, nd, env) })
	virOpt := timeIt(func() { descriptor.ProdVirial(nil, nd, env) })
	res.Rows = append(res.Rows, Table3Row{"ProdVirial", virBase, virOpt})

	frcBase := timeIt(func() { descriptor.ProdForceBaseline(nil, nd, env, n) })
	frcOpt := timeIt(func() {
		clear(force)
		descriptor.ProdForce(nil, nd, env, force)
	})
	res.Rows = append(res.Rows, Table3Row{"ProdForce", frcBase, frcOpt})
	return res, nil
}

// String prints the table in the paper's format.
func (r *Table3Result) String() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Op, ms(row.Baseline), ms(row.Optimized), fmt.Sprintf("%.1fx", row.Speedup()),
		})
	}
	return fmt.Sprintf("Table 3: customized operators, water %d atoms (paper: 130x/38x/17x on GPU)\n", r.Atoms) +
		table([]string{"Operator", "Baseline[ms]", "Optimized[ms]", "Speedup"}, rows)
}

// AblationSort isolates the compressed-radix-sort vs struct-sort choice of
// Sec. 5.2.2 on real neighbor data.
func AblationSort(sc Scale, nx, reps int) (structSort, radixSort time.Duration, err error) {
	cfg := waterModelConfig(sc)
	pos, types, list, _, err := waterBox(&cfg, nx, 4)
	if err != nil {
		return 0, 0, err
	}
	_ = pos
	_ = types
	spec := neighbor.Spec{Rcut: cfg.Rcut, Sel: cfg.Sel}
	var fm neighbor.Formatter
	start := time.Now()
	for r := 0; r < reps; r++ {
		if _, err := neighbor.FormatBaseline(spec, list); err != nil {
			return 0, 0, err
		}
	}
	structSort = time.Since(start) / time.Duration(reps)
	start = time.Now()
	for r := 0; r < reps; r++ {
		if _, err := fm.Format(spec, list); err != nil {
			return 0, 0, err
		}
	}
	radixSort = time.Since(start) / time.Duration(reps)
	return structSort, radixSort, nil
}
