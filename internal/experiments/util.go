package experiments

import (
	"os"
	"path/filepath"

	"deepmd-go/internal/core"
)

// tempModelFile saves the model into a temporary file and returns its
// path. Callers are test/benchmark harnesses; the file lives in the OS
// temp dir and is cleaned by the OS.
func tempModelFile(m *core.Model) (string, error) {
	dir, err := os.MkdirTemp("", "deepmd-model-*")
	if err != nil {
		return "", err
	}
	path := filepath.Join(dir, "model.dp")
	if err := m.SaveFile(path); err != nil {
		return "", err
	}
	return path, nil
}
