package experiments

import (
	"fmt"

	"deepmd-go/internal/analysis"
	"deepmd-go/internal/lattice"
	"deepmd-go/internal/md"
	"deepmd-go/internal/neighbor"
	"deepmd-go/internal/refpot"
	"deepmd-go/internal/units"
)

// Fig7Result reproduces the nanocrystalline-copper application (Fig. 7,
// Sec. 8.1) at reduced scale: build a Voronoi nanocrystal, anneal at
// 300 K, deform 10% along z at constant strain rate, and track the common
// neighbor analysis census and the stress-strain curve. The paper's
// qualitative outcome: atoms in grains stay fcc, grain boundaries stay
// disordered, and deformation creates stacking faults detected as hcp.
//
// By default the driving potential is the Sutton-Chen EAM (the kind of
// force field Sec. 8.1 contrasts DP against); the example program
// examples/nanocrystal can run the same protocol with a DP model.
type Fig7Result struct {
	Atoms        int
	Grains       int
	CensusBefore map[analysis.Structure]int
	CensusAfter  map[analysis.Structure]int
	Strain       []float64
	StressZZ     []float64 // bar
	FinalStrain  float64
}

// Fig7 runs the anneal + tensile-deformation protocol.
func Fig7(sc Scale) (*Fig7Result, error) {
	boxL, grains := 30.0, 3
	annealSteps, deformSteps := 150, 400
	if sc == Full {
		boxL, grains = 50.0, 6
		annealSteps, deformSteps = 1000, 4000
	}
	cell := lattice.Nanocrystal(boxL, grains, lattice.CuLatticeConst, 2.2, 17)
	sys := &md.System{
		Pos:        cell.Pos,
		Types:      cell.Types,
		MassByType: []float64{units.MassCu},
		Box:        cell.Box,
	}
	sys.InitVelocities(300, 23)

	pot := refpot.NewSuttonChenCu()
	pot.Rcut = 6.0 // keep the minimum-image requirement satisfied at 30 A
	spec := neighbor.Spec{Rcut: pot.Rcut, Skin: 1.0, Sel: []int{180}}

	res := &Fig7Result{Atoms: sys.N(), Grains: grains}
	cna := func() (map[analysis.Structure]int, error) {
		cls, err := analysis.CNA(sys.Pos, sys.Types, &sys.Box, analysis.FCCCNACutoff(lattice.CuLatticeConst), 1)
		if err != nil {
			return nil, err
		}
		return analysis.Census(cls), nil
	}

	// Anneal at 300 K.
	sim, err := md.NewSim(sys, pot, md.Options{
		Dt:           0.0005, // 0.5 fs, the paper's Fig. 7 time step
		Spec:         spec,
		RebuildEvery: 10,
		ThermoEvery:  20,
		Thermostat:   &md.Berendsen{TargetK: 300, TauPs: 0.1},
	})
	if err != nil {
		return nil, err
	}
	if err := sim.Run(annealSteps); err != nil {
		return nil, err
	}
	census, err := cna()
	if err != nil {
		return nil, err
	}
	res.CensusBefore = census

	// Tensile deformation along z at 5e8 1/s = 5e-4 1/ps as in Sec. 8.1,
	// scaled up so the short run still reaches 10% strain:
	// strain_total = rate * dt * steps.
	rate := 0.10 / (0.0005 * float64(deformSteps))
	z0 := sys.Box.L[2]
	sim2, err := md.NewSim(sys, pot, md.Options{
		Dt:           0.0005,
		Spec:         spec,
		RebuildEvery: 5,
		ThermoEvery:  deformSteps / 20,
		Thermostat:   &md.Berendsen{TargetK: 300, TauPs: 0.1},
		Deform:       &md.Deform{Axis: 2, RatePerPs: rate},
	})
	if err != nil {
		return nil, err
	}
	for s := 0; s < 20; s++ {
		if err := sim2.Run(deformSteps / 20); err != nil {
			return nil, err
		}
		strain := sys.Box.L[2]/z0 - 1
		res.Strain = append(res.Strain, strain)
		if len(sim2.Log) > 0 {
			res.StressZZ = append(res.StressZZ, sim2.Log[len(sim2.Log)-1].StressZZ)
		} else {
			res.StressZZ = append(res.StressZZ, 0)
		}
	}
	res.FinalStrain = sys.Box.L[2]/z0 - 1
	census, err = cna()
	if err != nil {
		return nil, err
	}
	res.CensusAfter = census
	return res, nil
}

// String prints the census change and strain-stress summary.
func (r *Fig7Result) String() string {
	frac := func(c map[analysis.Structure]int, s analysis.Structure) float64 {
		return 100 * float64(c[s]) / float64(r.Atoms)
	}
	out := fmt.Sprintf(`Fig 7: nanocrystalline Cu tensile test, %d atoms, %d grains, %.1f%% strain
  CNA before deformation:  fcc %.1f%%  hcp %.1f%%  other %.1f%%
  CNA after  deformation:  fcc %.1f%%  hcp %.1f%%  other %.1f%%
  (paper: grains fcc, boundaries disordered; stacking faults appear as hcp after 10%% strain)
  strain-stress curve (strain, sigma_zz[bar]):
`,
		r.Atoms, r.Grains, r.FinalStrain*100,
		frac(r.CensusBefore, analysis.FCC), frac(r.CensusBefore, analysis.HCP), frac(r.CensusBefore, analysis.Other),
		frac(r.CensusAfter, analysis.FCC), frac(r.CensusAfter, analysis.HCP), frac(r.CensusAfter, analysis.Other))
	for i := range r.Strain {
		out += fmt.Sprintf("    %.4f  %.0f\n", r.Strain[i], r.StressZZ[i])
	}
	return out
}
