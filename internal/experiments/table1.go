package experiments

import (
	"fmt"
	"time"

	"deepmd-go/internal/core"
	"deepmd-go/internal/perfmodel"
)

// Table1Result reproduces Table 1: the published landscape rows, the
// model-projected "This work" rows, and locally measured rows for this
// library's baseline and optimized implementations on the host CPU.
type Table1Result struct {
	Published []perfmodel.Table1Row
	ThisWork  []perfmodel.Table1Row
	LocalRows []perfmodel.Table1Row
}

// Table1 assembles the table; the local measurement uses a small water box
// and reports honest CPU seconds/step/atom.
func Table1(sc Scale) (*Table1Result, error) {
	res := &Table1Result{
		Published: perfmodel.Table1Published(),
		ThisWork:  perfmodel.Table1ThisWork(),
	}

	cfg := waterModelConfig(sc)
	model, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	pos, types, list, box, err := waterBox(&cfg, waterNX(sc), 9)
	if err != nil {
		return nil, err
	}
	n := len(types)
	var out core.Result

	measure := func(f func() error) (float64, error) {
		const reps = 3
		start := time.Now()
		for r := 0; r < reps; r++ {
			if err := f(); err != nil {
				return 0, err
			}
		}
		return time.Since(start).Seconds() / reps / float64(n), nil
	}
	base := core.NewBaselineEvaluator(model)
	tb, err := measure(func() error { return base.Compute(pos, types, n, list, box, &out) })
	if err != nil {
		return nil, err
	}
	opt := core.NewEvaluator[float64](model)
	to, err := measure(func() error { return opt.Compute(pos, types, n, list, box, &out) })
	if err != nil {
		return nil, err
	}
	mix := core.NewEvaluator[float32](model)
	tm, err := measure(func() error { return mix.Compute(pos, types, n, list, box, &out) })
	if err != nil {
		return nil, err
	}
	host := "this host (1 CPU)"
	res.LocalRows = []perfmodel.Table1Row{
		{Work: "This library, baseline strategy", Year: 2020, Potential: "DP", System: "H2O", Atoms: float64(n), Machine: host, TtS: tb},
		{Work: "This library, optimized double", Year: 2020, Potential: "DP", System: "H2O", Atoms: float64(n), Machine: host, TtS: to},
		{Work: "This library, optimized mixed", Year: 2020, Potential: "DP", System: "H2O", Atoms: float64(n), Machine: host, TtS: tm},
	}
	return res, nil
}

// String prints the assembled table.
func (r *Table1Result) String() string {
	var rows [][]string
	add := func(t1 perfmodel.Table1Row) {
		peak := "?"
		if t1.PeakFLOPS > 0 {
			peak = fmt.Sprintf("%.0fT", t1.PeakFLOPS/1e12)
		}
		rows = append(rows, []string{
			t1.Work, fmt.Sprint(t1.Year), t1.Potential, t1.System,
			fmt.Sprintf("%.3g", t1.Atoms), t1.Machine, peak, fmt.Sprintf("%.1e", t1.TtS),
		})
	}
	for _, t1 := range r.Published {
		add(t1)
	}
	for _, t1 := range r.ThisWork {
		add(t1)
	}
	for _, t1 := range r.LocalRows {
		add(t1)
	}
	return "Table 1: MD simulators with ab initio accuracy (TtS = seconds/step/atom)\n" +
		table([]string{"Work", "Year", "Pot", "System", "Atoms", "Machine", "Peak", "TtS"}, rows)
}
