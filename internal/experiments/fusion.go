package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"deepmd-go/internal/tensor"
)

// FusionResult reproduces Sec. 7.1.2: the standard-operator graphs vs the
// fused kernels on the tall-skinny matrix shapes of the water embedding
// net. The paper reports 1.3x (MATMUL+SUM -> GEMM), 1.7x (CONCAT+SUM ->
// GEMM) and 1.6x (TANH+TANHGrad -> fused) on GPU.
type FusionResult struct {
	Rows []FusionRow
}

// FusionRow is one fusion contrast.
type FusionRow struct {
	Name      string
	Unfused   time.Duration
	Fused     time.Duration
	RowsShape string
}

// Speedup returns unfused/fused.
func (r FusionRow) Speedup() float64 {
	if r.Fused == 0 {
		return 0
	}
	return float64(r.Unfused) / float64(r.Fused)
}

// Fusion measures the three fusions. rows is the batch height; the paper's
// example is 376,832 x 50 (oxygen-hydrogen pairs of 4,096 molecules); Quick
// uses a smaller batch.
func Fusion(sc Scale, reps int) *FusionResult {
	rows := 376832 / 64
	if sc == Full {
		rows = 376832 / 8
	}
	rng := rand.New(rand.NewSource(1))
	const in, out = 50, 100
	x := tensor.NewMatrix[float64](rows, in)
	w := tensor.NewMatrix[float64](in, out)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	for i := range w.Data {
		w.Data[i] = rng.NormFloat64()
	}
	bias := make([]float64, out)
	for i := range bias {
		bias[i] = rng.NormFloat64()
	}

	res := &FusionResult{}
	timeIt := func(f func()) time.Duration {
		start := time.Now()
		for r := 0; r < reps; r++ {
			f()
		}
		return time.Since(start) / time.Duration(reps)
	}

	// MATMUL + SUM vs fused GEMM-with-bias.
	un := timeIt(func() { tensor.BiasAdd(nil, tensor.MatMul(nil, x, w), bias) })
	dst := tensor.NewMatrix[float64](rows, out)
	fu := timeIt(func() { tensor.GemmBias(nil, x, w, bias, dst) })
	res.Rows = append(res.Rows, FusionRow{"MATMUL+SUM -> GEMM", un, fu, fmt.Sprintf("%dx%dx%d", rows, in, out)})

	// CONCAT + SUM vs in-place skip add.
	y := tensor.NewMatrix[float64](rows, 2*in)
	for i := range y.Data {
		y.Data[i] = rng.NormFloat64()
	}
	un = timeIt(func() { tensor.Add(nil, tensor.ConcatCols(nil, x), y) })
	ywork := y.Clone()
	fu = timeIt(func() { tensor.AddSkipDouble(nil, x, ywork) })
	res.Rows = append(res.Rows, FusionRow{"CONCAT+SUM -> skip add", un, fu, fmt.Sprintf("%dx%d", rows, 2*in)})

	// TANH then TANHGrad vs fused production during the same pass.
	pre := tensor.NewMatrix[float64](rows, out)
	for i := range pre.Data {
		pre.Data[i] = rng.NormFloat64()
	}
	un = timeIt(func() {
		t := tensor.Tanh(nil, pre)
		tensor.TanhGrad(nil, t)
	})
	yv := tensor.NewMatrix[float64](rows, out)
	gv := tensor.NewMatrix[float64](rows, out)
	fu = timeIt(func() { tensor.TanhWithGrad(nil, pre, yv, gv) })
	res.Rows = append(res.Rows, FusionRow{"TANH+TANHGrad -> fused", un, fu, fmt.Sprintf("%dx%d", rows, out)})
	return res
}

// String prints the rows.
func (r *FusionResult) String() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{row.Name, row.RowsShape, ms(row.Unfused), ms(row.Fused), fmt.Sprintf("%.2fx", row.Speedup())})
	}
	return "Sec 7.1.2: standard-operator fusion (paper: 1.3x / 1.7x / 1.6x on GPU)\n" +
		table([]string{"Fusion", "Shape", "Unfused[ms]", "Fused[ms]", "Speedup"}, rows)
}
