package experiments

import (
	"fmt"
	"math"
	"sync"
	"time"

	"deepmd-go/internal/core"
)

// ServeRow is one system of the concurrent-serving contrast: aggregate
// force-evaluation throughput of a single goroutine-safe Engine under 1
// caller and under Conc concurrent callers borrowing from its evaluator
// pool.
type ServeRow struct {
	Label string
	Atoms int
	// Serial is the best-of-rounds wall time per evaluation with one
	// caller.
	Serial time.Duration
	// Concurrent is the best-of-rounds aggregate wall time per
	// evaluation with Conc callers (wall / total evaluations).
	Concurrent time.Duration
	// Speedup is aggregate throughput gain: Serial / Concurrent.
	Speedup float64
}

// ServeResult is the `dpbench -exp serve` experiment (ISSUE 5): the
// serving primitive the Engine API exists for. One Engine, opened once,
// serves N goroutines evaluating independent replicas of a system; the
// pool hands each caller its own evaluator (arenas and all), so the
// aggregate throughput should scale with cores while every result stays
// bit-identical to a serial evaluation — which the experiment verifies
// as it measures. On a single-core host the concurrent rows only verify
// that pool handoff adds no meaningful overhead.
type ServeResult struct {
	Conc int
	Rows []ServeRow
}

// Serve measures one Engine's aggregate evaluation throughput at 1 and
// at conc concurrent callers on the water (nt = 2) and copper (nt = 1)
// shapes, verifying bit-identical results across the pool as it goes.
func Serve(sc Scale, conc int) (*ServeResult, error) {
	if conc <= 0 {
		conc = 8
	}
	rounds, evalsPerCaller := 3, 4
	res := &ServeResult{Conc: conc}
	for _, sys := range []struct {
		label string
		water bool
	}{{"water", true}, {"copper", false}} {
		var cfg core.Config
		if sys.water {
			cfg = waterModelConfig(sc)
		} else {
			cfg = copperModelConfig(sc)
		}
		model, err := core.New(cfg)
		if err != nil {
			return nil, err
		}
		var pos []float64
		var types []int
		var lb listAndBox
		if sys.water {
			p, t, l, b, err := waterBox(&cfg, waterNX(sc), 3)
			if err != nil {
				return nil, err
			}
			pos, types, lb = p, t, listAndBox{l, b}
		} else {
			p, t, l, b, err := copperBox(&cfg, copperNX(sc))
			if err != nil {
				return nil, err
			}
			pos, types, lb = p, t, listAndBox{l, b}
		}
		n := len(types)
		row := ServeRow{Label: sys.label, Atoms: n}

		// One evaluator per concurrent caller, serial inside (the serving
		// configuration: parallelism comes from independent requests, not
		// from splitting one request across cores).
		engine, err := core.NewEngine(model, core.Plan{Workers: 1, MaxConcurrency: conc})
		if err != nil {
			return nil, err
		}

		// Warm the whole pool so both measurements are steady-state, then
		// take the serial reference.
		if err := engine.Prewarm(pos, types, n, lb.l, lb.b); err != nil {
			return nil, err
		}
		var ref core.Result
		if err := engine.EvaluateInto(pos, types, n, lb.l, lb.b, &ref); err != nil {
			return nil, err
		}
		var out core.Result
		for r := 0; r < rounds; r++ {
			start := time.Now()
			for k := 0; k < conc*evalsPerCaller; k++ {
				if err := engine.EvaluateInto(pos, types, n, lb.l, lb.b, &out); err != nil {
					return nil, err
				}
			}
			if el := time.Since(start) / time.Duration(conc*evalsPerCaller); row.Serial == 0 || el < row.Serial {
				row.Serial = el
			}
		}

		// Concurrent callers: same total evaluation count, conc
		// goroutines, each with its own Result.
		outs := make([]core.Result, conc)
		errs := make([]error, conc)
		for r := 0; r < rounds; r++ {
			var wg sync.WaitGroup
			start := time.Now()
			for g := 0; g < conc; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for k := 0; k < evalsPerCaller; k++ {
						if err := engine.EvaluateInto(pos, types, n, lb.l, lb.b, &outs[g]); err != nil {
							errs[g] = err
							return
						}
					}
				}(g)
			}
			wg.Wait()
			if el := time.Since(start) / time.Duration(conc*evalsPerCaller); row.Concurrent == 0 || el < row.Concurrent {
				row.Concurrent = el
			}
		}
		for g := 0; g < conc; g++ {
			if errs[g] != nil {
				return nil, errs[g]
			}
			// Pool handoff must not change the math: bit-identical to the
			// serial reference, whichever evaluator served the call.
			if outs[g].Energy != ref.Energy {
				return nil, fmt.Errorf("experiments: serve %s: caller %d energy %.17g != serial %.17g", sys.label, g, outs[g].Energy, ref.Energy)
			}
			for i := range ref.Force {
				if math.Float64bits(outs[g].Force[i]) != math.Float64bits(ref.Force[i]) {
					return nil, fmt.Errorf("experiments: serve %s: caller %d force[%d] differs from serial", sys.label, g, i)
				}
			}
		}
		row.Speedup = float64(row.Serial) / float64(row.Concurrent)
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// String prints the throughput contrast.
func (r *ServeResult) String() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, w := range r.Rows {
		rows = append(rows, []string{
			w.Label,
			fmt.Sprintf("%d", w.Atoms),
			ms(w.Serial),
			ms(w.Concurrent),
			fmt.Sprintf("%.2f", w.Speedup),
		})
	}
	return fmt.Sprintf("Engine serving throughput: one goroutine-safe engine, 1 vs %d concurrent callers (ms/eval aggregate; results verified bit-identical across the pool)\n", r.Conc) +
		table([]string{"system", "atoms", "serial", fmt.Sprintf("conc x%d", r.Conc), "speedup"}, rows)
}

// Records emits the machine-readable perf trajectory rows.
func (r *ServeResult) Records() []Record {
	var recs []Record
	for _, w := range r.Rows {
		shape := fmt.Sprintf("%s-%datoms", w.Label, w.Atoms)
		// "/serial" (not "/c1") so a conc=1 run cannot emit two records
		// under the same shape.
		recs = append(recs,
			Record{Experiment: "serve", Shape: shape + "/serial", NsPerOp: float64(w.Serial.Nanoseconds()), Speedup: 1},
			Record{Experiment: "serve", Shape: fmt.Sprintf("%s/c%d", shape, r.Conc), NsPerOp: float64(w.Concurrent.Nanoseconds()), Speedup: w.Speedup},
		)
	}
	return recs
}
