package experiments

import (
	"fmt"
	"math"
	"time"

	"deepmd-go/internal/compress"
	"deepmd-go/internal/core"
	"deepmd-go/internal/perfmodel"
)

// CompressRow is one system of the compression contrast: the exact
// chunk-batched pipeline against the tabulated-embedding pipeline,
// serial and with the worker budget.
type CompressRow struct {
	Label         string
	Atoms         int
	Batched       time.Duration // best-of-reps, exact-batched, serial
	Compressed    time.Duration // best-of-reps, compressed, serial
	CompressedPar time.Duration // best-of-reps, compressed, Workers goroutines
	BuildTime     time.Duration // one-time table construction
	TableBytes    int           // coefficient storage (the memory side of the trade)
	MaxRelDiff    float64       // max |compressed - batched| / (1 + |batched|) over forces
}

// CompressResult is the `dpbench -exp compress` experiment (ISSUE 4): the
// successor papers' model compression — Lu et al. ("86 PFLOPS") and Li et
// al. ("149 ns/day") replace the embedding network, whose GEMMs dominate
// the SC '20 time-to-solution, with tabulated piecewise quintics. Rows
// are measured locally; the Summit projection applies the analytic
// compression factor to the calibrated performance model (the
// substitution policy of DESIGN.md).
type CompressResult struct {
	Workers    int
	Rows       []CompressRow
	Projection []CompressProjRow
}

// CompressProjRow is one system of the Summit projection at the Fig. 6
// weak-scaling operating point.
type CompressProjRow struct {
	Label           string
	WorkRemaining   float64 // computeFrac: fraction of per-atom FLOPs left after compression
	GainDouble      float64 // projected TtS gain, double precision
	GainMixed       float64 // projected TtS gain, mixed precision
	GainStrongLimit float64 // projected gain at the 27,360-GPU strong-scaling limit (mixed)
}

// CompressEmbedding measures whole force evaluations of the exact-batched
// and compressed pipelines on the water (nt = 2) and copper (nt = 1)
// shapes, verifying force agreement under the resolution-tied tolerance
// as it goes, then projects the compression factor onto Summit.
func CompressEmbedding(sc Scale, workers int) (*CompressResult, error) {
	if workers <= 0 {
		workers = 4
	}
	reps := 5
	if sc == Full {
		reps = 3
	}
	res := &CompressResult{Workers: workers}
	for _, sys := range []struct {
		label string
		water bool
	}{{"water", true}, {"copper", false}} {
		var cfg core.Config
		if sys.water {
			cfg = waterModelConfig(sc)
		} else {
			cfg = copperModelConfig(sc)
		}
		model, err := core.New(cfg)
		if err != nil {
			return nil, err
		}
		var pos []float64
		var types []int
		var lb listAndBox
		if sys.water {
			p, t, l, b, err := waterBox(&cfg, waterNX(sc), 3)
			if err != nil {
				return nil, err
			}
			pos, types, lb = p, t, listAndBox{l, b}
		} else {
			p, t, l, b, err := copperBox(&cfg, copperNX(sc))
			if err != nil {
				return nil, err
			}
			pos, types, lb = p, t, listAndBox{l, b}
		}
		n := len(types)
		row := CompressRow{Label: sys.label, Atoms: n}

		buildStart := time.Now()
		if err := model.AttachCompressedTables(compress.Spec{}); err != nil {
			return nil, err
		}
		row.BuildTime = time.Since(buildStart)

		modelParV := *model
		modelParV.Cfg.Workers = workers
		modelPar := &modelParV

		evBat := core.NewEvaluator[float64](model)
		evCmp := core.NewEvaluator[float64](model)
		if err := evCmp.SetCompressedEmbedding(compress.Spec{}); err != nil {
			return nil, err
		}
		row.TableBytes = evCmp.CompressedTableBytes()
		evPar := core.NewEvaluator[float64](modelPar)
		if err := evPar.SetCompressedEmbedding(compress.Spec{}); err != nil {
			return nil, err
		}

		var rBat, rCmp core.Result
		timeEval := func(ev *core.Evaluator[float64], out *core.Result) (time.Duration, error) {
			best := time.Duration(0)
			for r := 0; r < reps; r++ {
				start := time.Now()
				if err := ev.Compute(pos, types, n, lb.l, lb.b, out); err != nil {
					return 0, err
				}
				if el := time.Since(start); best == 0 || el < best {
					best = el
				}
			}
			return best, nil
		}
		if row.Batched, err = timeEval(evBat, &rBat); err != nil {
			return nil, err
		}
		if row.Compressed, err = timeEval(evCmp, &rCmp); err != nil {
			return nil, err
		}
		var rPar core.Result
		if row.CompressedPar, err = timeEval(evPar, &rPar); err != nil {
			return nil, err
		}
		// Both compressed runs — serial and worker-parallel — are checked
		// against the exact pipeline, so a partitioning bug on the
		// parallel path cannot ship a timing row without a correctness
		// signal.
		for _, comp := range []*core.Result{&rCmp, &rPar} {
			for i := range rBat.Force {
				d := math.Abs(comp.Force[i]-rBat.Force[i]) / (1 + math.Abs(rBat.Force[i]))
				if d > row.MaxRelDiff {
					row.MaxRelDiff = d
				}
			}
		}
		// Resolution-tied budget: the default table's O(h⁵) derivative
		// error amplified through the descriptor stage stays orders below
		// this; see DESIGN.md "Compressed embedding".
		if row.MaxRelDiff > 1e-7 {
			return nil, fmt.Errorf("experiments: compress %s: compressed forces deviate %.2e from the exact pipeline", sys.label, row.MaxRelDiff)
		}
		res.Rows = append(res.Rows, row)

		// Summit projection from the analytic compression factor of the
		// *paper* geometry for this system (independent of Quick/Full).
		var pcfg core.Config
		var sm perfmodel.SystemModel
		var typeFrac []float64
		var perGPU int
		if sys.water {
			pcfg, sm = core.WaterConfig(), perfmodel.WaterModel()
			typeFrac, perGPU = []float64{1.0 / 3, 2.0 / 3}, 402_653_184/(4560*6)
		} else {
			pcfg, sm = core.CopperConfig(), perfmodel.CopperModel()
			typeFrac, perGPU = []float64{1}, 113_246_208/(4560*6)
		}
		total := pcfg.FLOPsPerAtomStep(typeFrac)
		frac := (total - pcfg.EmbedFLOPsPerAtomStep() + pcfg.CompressedEmbedFLOPsPerAtomStep()) / total
		m := perfmodel.Summit()
		res.Projection = append(res.Projection, CompressProjRow{
			Label:           sys.label,
			WorkRemaining:   frac,
			GainDouble:      sm.CompressedGain(m, perGPU, false, frac),
			GainMixed:       sm.CompressedGain(m, perGPU, true, frac),
			GainStrongLimit: sm.CompressedGain(m, 460, true, frac),
		})
	}
	return res, nil
}

// String prints the contrast with speedups relative to the exact-batched
// path, then the Summit projection.
func (r *CompressResult) String() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, w := range r.Rows {
		rows = append(rows, []string{
			w.Label,
			fmt.Sprintf("%d", w.Atoms),
			ms(w.Batched),
			ms(w.Compressed),
			ms(w.CompressedPar),
			fmt.Sprintf("%.2f", float64(w.Batched)/float64(w.Compressed)),
			fmt.Sprintf("%.2f", float64(w.Batched)/float64(w.CompressedPar)),
			ms(w.BuildTime),
			fmt.Sprintf("%.1f", float64(w.TableBytes)/(1<<20)),
			fmt.Sprintf("%.1e", w.MaxRelDiff),
		})
	}
	out := fmt.Sprintf("Compressed embedding (86-PFLOPS/149-ns-day successors): exact nets vs tabulated quintics (ms/eval; forces verified against the exact pipeline)\n") +
		table([]string{"system", "atoms", "batched", "compressed", fmt.Sprintf("compressed x%d", r.Workers), "speedup", "par speedup", "build", "tables MB", "max rel diff"}, rows)
	proj := make([][]string, 0, len(r.Projection))
	for _, p := range r.Projection {
		proj = append(proj, []string{
			p.Label,
			fmt.Sprintf("%.0f%%", 100*p.WorkRemaining),
			fmt.Sprintf("%.2f", p.GainDouble),
			fmt.Sprintf("%.2f", p.GainMixed),
			fmt.Sprintf("%.2f", p.GainStrongLimit),
		})
	}
	out += "\nSummit projection (paper geometry, Fig. 6 weak-scaling load; calibrated model x analytic compression factor)\n" +
		table([]string{"system", "work left", "gain double", "gain mixed", "gain @ strong limit"}, proj)
	return out
}

// Records emits the machine-readable perf trajectory rows.
func (r *CompressResult) Records() []Record {
	var recs []Record
	for _, w := range r.Rows {
		shape := fmt.Sprintf("%s-%datoms", w.Label, w.Atoms)
		recs = append(recs,
			Record{Experiment: "compress", Shape: shape + "/batched", NsPerOp: float64(w.Batched.Nanoseconds()), Speedup: 1},
			Record{Experiment: "compress", Shape: shape + "/compressed", NsPerOp: float64(w.Compressed.Nanoseconds()), Speedup: ratio(w.Batched, w.Compressed)},
			Record{Experiment: "compress", Shape: fmt.Sprintf("%s/compressed-w%d", shape, r.Workers), NsPerOp: float64(w.CompressedPar.Nanoseconds()), Speedup: ratio(w.Batched, w.CompressedPar)},
		)
	}
	return recs
}
