package experiments

import (
	"fmt"
	"net"
	"sync"
	"time"

	"deepmd-go/internal/core"
	"deepmd-go/internal/domain"
	"deepmd-go/internal/lattice"
	"deepmd-go/internal/md"
	"deepmd-go/internal/mpi"
	"deepmd-go/internal/neighbor"
	"deepmd-go/internal/units"
)

// MPIScaling is the ISSUE 9 rank-scaling experiment over real sockets:
// the Fig. 5/6 strong/weak shapes of the water system, run once on the
// in-process transport (the oracle) and once on the TCP transport with
// one TCPWorld per rank meshed over loopback sockets. Every TCP leg is
// differentially checked against its in-process twin — thermo log and
// per-rank energies must be bit-identical — and the rows record the
// communication volume (message counts, codec-exact payload bytes, framed
// wire bytes) and the measured comm/compute overlap fraction of the
// staged halo exchange.
type MPIScalingResult struct {
	Rows []MPIScalingRow
}

// MPIScalingRow is one (shape, rank count, transport) measurement.
type MPIScalingRow struct {
	Mode      string // "strong" (fixed total atoms) or "weak" (fixed atoms/rank)
	Atoms     int
	Ranks     int
	Transport string // "inproc" or "tcp"
	Steps     int
	LoopTime  time.Duration
	Messages  int64
	Bytes     int64
	WireBytes int64
	// Overlap is the mean over ranks of 1 - wait/window in the exchange.
	Overlap float64
	// BitIdentical reports the differential against the in-process twin
	// (always true for the inproc rows themselves).
	BitIdentical bool
}

// mpiWaterCase is one system size + decomposition of the experiment.
type mpiWaterCase struct {
	mode  string
	nx    [3]int // molecules per axis
	ranks int
	grid  [3]int
}

// mpiscaleCases returns the strong legs (fixed 4x4x4-molecule box split
// 1..8 ways, Fig. 5 shape) and the weak legs (a constant 4x4x4-molecule
// sub-domain per rank, doubling one axis at a time, Fig. 6 shape).
func mpiscaleCases() []mpiWaterCase {
	return []mpiWaterCase{
		{"strong", [3]int{4, 4, 4}, 1, [3]int{1, 1, 1}},
		{"strong", [3]int{4, 4, 4}, 2, [3]int{2, 1, 1}},
		{"strong", [3]int{4, 4, 4}, 4, [3]int{2, 2, 1}},
		{"strong", [3]int{4, 4, 4}, 8, [3]int{2, 2, 2}},
		{"weak", [3]int{4, 4, 4}, 1, [3]int{1, 1, 1}},
		{"weak", [3]int{8, 4, 4}, 2, [3]int{2, 1, 1}},
		{"weak", [3]int{8, 8, 4}, 4, [3]int{2, 2, 1}},
		{"weak", [3]int{8, 8, 8}, 8, [3]int{2, 2, 2}},
	}
}

// MPIScaling runs the strong and weak rank-scaling legs on both
// transports. steps <= 0 defaults by scale (10 quick, 30 full).
func MPIScaling(sc Scale, steps int) (*MPIScalingResult, error) {
	if steps <= 0 {
		steps = 10
		if sc == Full {
			steps = 30
		}
	}
	cfg := core.TinyConfig(2)
	cfg.TypeNames = []string{"O", "H"}
	cfg.Masses = []float64{units.MassO, units.MassH}
	cfg.Rcut, cfg.RcutSmth, cfg.Skin = 4.0, 0.5, 1.0
	cfg.Sel = []int{12, 24}
	cfg.Seed = 17
	model, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	spec := neighbor.Spec{Rcut: cfg.Rcut, Skin: cfg.Skin, Sel: cfg.Sel}
	newPot := func() md.Potential { return core.NewEvaluator[float64](model) }

	res := &MPIScalingResult{}
	for _, cs := range mpiscaleCases() {
		cell := lattice.Water(cs.nx[0], cs.nx[1], cs.nx[2], lattice.WaterSpacing, 17)
		sys := &md.System{
			Pos:        cell.Pos,
			Types:      cell.Types,
			MassByType: cfg.Masses,
			Box:        cell.Box,
			Vel:        make([]float64, 3*cell.N()),
		}
		sys.InitVelocities(330, 18)
		opt := domain.Options{
			Ranks: cs.ranks, Grid: cs.grid, Dt: 0.0005, Steps: steps, Spec: spec,
			RebuildEvery: 5, ThermoEvery: 5, UseIallreduce: true,
		}

		inproc, err := domain.Run(sys, newPot, opt)
		if err != nil {
			return nil, fmt.Errorf("mpiscale %s ranks=%d inproc: %w", cs.mode, cs.ranks, err)
		}
		res.Rows = append(res.Rows, mpiscaleRow(cs, sys.N(), steps, "inproc", inproc, true))

		tcp, err := runTCPRanks(cs.ranks, sys, newPot, opt)
		if err != nil {
			return nil, fmt.Errorf("mpiscale %s ranks=%d tcp: %w", cs.mode, cs.ranks, err)
		}
		same := statsBitIdentical(inproc, tcp)
		if !same {
			return nil, fmt.Errorf("mpiscale %s ranks=%d: TCP results diverge from in-process oracle", cs.mode, cs.ranks)
		}
		res.Rows = append(res.Rows, mpiscaleRow(cs, sys.N(), steps, "tcp", tcp, same))
	}
	return res, nil
}

func mpiscaleRow(cs mpiWaterCase, atoms, steps int, transport string, st *domain.Stats, same bool) MPIScalingRow {
	row := MPIScalingRow{
		Mode: cs.mode, Atoms: atoms, Ranks: cs.ranks, Transport: transport,
		Steps: steps, LoopTime: st.LoopTime,
		Messages: st.Messages, Bytes: st.Bytes, WireBytes: st.WireBytes,
		BitIdentical: same,
	}
	for _, o := range st.OverlapPerRank {
		row.Overlap += o
	}
	if len(st.OverlapPerRank) > 0 {
		row.Overlap /= float64(len(st.OverlapPerRank))
	}
	return row
}

// statsBitIdentical is the differential: rank-0 observables must match
// exactly (==, not within tolerance) between transports.
func statsBitIdentical(a, b *domain.Stats) bool {
	if len(a.Thermo) != len(b.Thermo) || len(a.PEPerRank) != len(b.PEPerRank) {
		return false
	}
	for i := range a.Thermo {
		if a.Thermo[i] != b.Thermo[i] {
			return false
		}
	}
	for r := range a.PEPerRank {
		if a.PEPerRank[r] != b.PEPerRank[r] || a.KEPerRank[r] != b.KEPerRank[r] {
			return false
		}
		if a.AtomsPerRank[r] != b.AtomsPerRank[r] || a.GhostsPerRank[r] != b.GhostsPerRank[r] {
			return false
		}
	}
	return true
}

// runTCPRanks runs one rank per goroutine, each with its own TCPWorld
// meshed over real loopback sockets (the launcher-spawned multi-process
// topology is exercised by cmd/dpmd and the CI smoke job; sharing the
// process here keeps the experiment self-contained while still paying
// real serialization and socket costs). Returns rank 0's stats.
func runTCPRanks(ranks int, sys *md.System, newPot func() md.Potential, opt domain.Options) (*domain.Stats, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer ln.Close()
	go mpi.ServeRendezvous(ln, ranks)
	coord := ln.Addr().String()

	var root *domain.Stats
	errs := make([]error, ranks)
	var wg sync.WaitGroup
	for rank := 0; rank < ranks; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					errs[rank] = fmt.Errorf("rank %d: %v", rank, p)
				}
			}()
			w, err := mpi.DialTCP(mpi.TCPConfig{Rank: rank, Size: ranks, Coordinator: coord, Listen: "127.0.0.1:0"})
			if err != nil {
				errs[rank] = err
				return
			}
			defer w.Close()
			stats, err := domain.RunOn(w.Comm(), sys, newPot(), opt)
			if err != nil {
				errs[rank] = err
				return
			}
			if rank == 0 {
				root = stats
			}
		}(rank)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return root, nil
}

// Records implements Recorder for BENCH_PR9.json.
func (r *MPIScalingResult) Records() []Record {
	var base1 map[string]float64 // strong-scaling reference times per transport
	base1 = map[string]float64{}
	for _, row := range r.Rows {
		if row.Mode == "strong" && row.Ranks == 1 {
			base1[row.Transport] = float64(row.LoopTime.Nanoseconds())
		}
	}
	recs := make([]Record, 0, len(r.Rows))
	for _, row := range r.Rows {
		rec := Record{
			Experiment:   "mpiscale",
			Shape:        fmt.Sprintf("%s/water%d/ranks=%d/%s", row.Mode, row.Atoms, row.Ranks, row.Transport),
			NsPerOp:      float64(row.LoopTime.Nanoseconds()) / float64(row.Steps),
			Messages:     row.Messages,
			LogicalBytes: row.Bytes,
			WireBytes:    row.WireBytes,
			Overlap:      row.Overlap,
		}
		if row.Mode == "strong" {
			if ref := base1[row.Transport]; ref > 0 {
				rec.Speedup = ref / float64(row.LoopTime.Nanoseconds())
			}
		}
		recs = append(recs, rec)
	}
	return recs
}

// String prints the rank-scaling table.
func (r *MPIScalingResult) String() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Mode,
			fmt.Sprint(row.Atoms),
			fmt.Sprint(row.Ranks),
			row.Transport,
			fmt.Sprintf("%.1f", row.LoopTime.Seconds()*1000),
			fmt.Sprint(row.Messages),
			fmt.Sprint(row.WireBytes),
			fmt.Sprintf("%.2f", row.Overlap),
			fmt.Sprint(row.BitIdentical),
		})
	}
	return "ISSUE 9: water rank scaling, in-process vs TCP sockets (bit-identity enforced)\n" +
		table([]string{"Mode", "Atoms", "Ranks", "Transport", "Loop[ms]", "Msgs", "WireBytes", "Overlap", "BitIdent"}, rows)
}
