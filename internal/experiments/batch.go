package experiments

import (
	"fmt"
	"math"
	"time"

	"deepmd-go/internal/core"
)

// BatchRow is one system of the descriptor-batching contrast: the per-atom
// reference pipeline (2018 computational granularity, Sec. 5.3.1's "before")
// against the chunk-batched strided-GEMM pipeline, serial and with the
// worker budget.
type BatchRow struct {
	Label      string
	Atoms      int
	PerAtom    time.Duration // best-of-reps, per-atom reference, serial
	Batched    time.Duration // best-of-reps, batched, serial
	BatchedPar time.Duration // best-of-reps, batched, Workers goroutines
	MaxRelDiff float64       // max |batched - perAtom| / (1 + |perAtom|) over forces
}

// BatchResult is the `dpbench -exp batch` experiment (ISSUE 3): the
// evaluator-level ablation of Sec. 5.3.1 / Fig. 3 — merging the per-atom
// embedding and descriptor matrices into chunk-level batched GEMMs is what
// moves the dominant non-network FLOPs onto the blocked kernels.
type BatchResult struct {
	Workers int
	Rows    []BatchRow
}

// DescriptorBatch measures whole force evaluations of the per-atom and
// batched descriptor pipelines on the water (nt = 2) and copper (nt = 1)
// shapes, verifying force agreement under the magnitude-proportional
// tolerance as it goes.
func DescriptorBatch(sc Scale, workers int) (*BatchResult, error) {
	if workers <= 0 {
		workers = 4
	}
	reps := 5
	if sc == Full {
		reps = 3
	}
	res := &BatchResult{Workers: workers}
	for _, sys := range []struct {
		label string
		water bool
	}{{"water", true}, {"copper", false}} {
		var cfg core.Config
		if sys.water {
			cfg = waterModelConfig(sc)
		} else {
			cfg = copperModelConfig(sc)
		}
		model, err := core.New(cfg)
		if err != nil {
			return nil, err
		}
		var pos []float64
		var types []int
		var lb listAndBox
		if sys.water {
			p, t, l, b, err := waterBox(&cfg, waterNX(sc), 3)
			if err != nil {
				return nil, err
			}
			pos, types, lb = p, t, listAndBox{l, b}
		} else {
			p, t, l, b, err := copperBox(&cfg, copperNX(sc))
			if err != nil {
				return nil, err
			}
			pos, types, lb = p, t, listAndBox{l, b}
		}
		n := len(types)
		row := BatchRow{Label: sys.label, Atoms: n}

		modelParV := *model
		modelParV.Cfg.Workers = workers
		modelPar := &modelParV

		evRef := core.NewEvaluator[float64](model)
		evRef.SetPerAtomDescriptors(true)
		evBat := core.NewEvaluator[float64](model)
		evPar := core.NewEvaluator[float64](modelPar)

		var rRef, rBat core.Result
		timeEval := func(ev *core.Evaluator[float64], out *core.Result) (time.Duration, error) {
			best := time.Duration(0)
			for r := 0; r < reps; r++ {
				start := time.Now()
				if err := ev.Compute(pos, types, n, lb.l, lb.b, out); err != nil {
					return 0, err
				}
				if el := time.Since(start); best == 0 || el < best {
					best = el
				}
			}
			return best, nil
		}
		if row.PerAtom, err = timeEval(evRef, &rRef); err != nil {
			return nil, err
		}
		if row.Batched, err = timeEval(evBat, &rBat); err != nil {
			return nil, err
		}
		for i := range rRef.Force {
			d := math.Abs(rBat.Force[i]-rRef.Force[i]) / (1 + math.Abs(rRef.Force[i]))
			if d > row.MaxRelDiff {
				row.MaxRelDiff = d
			}
		}
		if row.MaxRelDiff > 1e-9 {
			return nil, fmt.Errorf("experiments: batch %s: batched forces deviate %.2e from per-atom reference", sys.label, row.MaxRelDiff)
		}
		var rPar core.Result
		if row.BatchedPar, err = timeEval(evPar, &rPar); err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// String prints the contrast with speedups relative to the per-atom path.
func (r *BatchResult) String() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, w := range r.Rows {
		rows = append(rows, []string{
			w.Label,
			fmt.Sprintf("%d", w.Atoms),
			ms(w.PerAtom),
			ms(w.Batched),
			ms(w.BatchedPar),
			fmt.Sprintf("%.2f", float64(w.PerAtom)/float64(w.Batched)),
			fmt.Sprintf("%.2f", float64(w.PerAtom)/float64(w.BatchedPar)),
			fmt.Sprintf("%.1e", w.MaxRelDiff),
		})
	}
	return fmt.Sprintf("Descriptor batching (Sec 5.3.1/Fig 3): per-atom GEMM loops vs chunk-batched strided GEMMs (ms/eval; forces verified against the per-atom oracle)\n") +
		table([]string{"system", "atoms", "per-atom", "batched", fmt.Sprintf("batched x%d", r.Workers), "speedup", "par speedup", "max rel diff"}, rows)
}

// Records emits the machine-readable perf trajectory rows.
func (r *BatchResult) Records() []Record {
	var recs []Record
	for _, w := range r.Rows {
		shape := fmt.Sprintf("%s-%datoms", w.Label, w.Atoms)
		recs = append(recs,
			Record{Experiment: "batch", Shape: shape + "/per-atom", NsPerOp: float64(w.PerAtom.Nanoseconds()), Speedup: 1},
			Record{Experiment: "batch", Shape: shape + "/batched", NsPerOp: float64(w.Batched.Nanoseconds()), Speedup: ratio(w.PerAtom, w.Batched)},
			Record{Experiment: "batch", Shape: fmt.Sprintf("%s/batched-w%d", shape, r.Workers), NsPerOp: float64(w.BatchedPar.Nanoseconds()), Speedup: ratio(w.PerAtom, w.BatchedPar)},
		)
	}
	return recs
}

func ratio(base, opt time.Duration) float64 {
	if opt <= 0 {
		return 0
	}
	return float64(base) / float64(opt)
}
