package experiments

import (
	"fmt"

	"deepmd-go/internal/analysis"
	"deepmd-go/internal/core"
	"deepmd-go/internal/lattice"
	"deepmd-go/internal/md"
	"deepmd-go/internal/neighbor"
	"deepmd-go/internal/refpot"
	"deepmd-go/internal/train"
)

// Fig4Result reproduces the Fig. 4 workflow: train a water DP model on
// "ab initio" data (the toy-water oracle substitutes for DFT), run the
// same trajectory protocol once with the double-precision model and once
// with the mixed-precision model, and compare the three radial
// distribution functions. The paper's claim: the RDFs "agree perfectly";
// the quantitative assertion here is a small maximum deviation between
// the double and mixed g(r) curves.
type Fig4Result struct {
	Molecules    int
	Steps        int
	TrainSteps   int
	FinalLoss    float64
	MaxDeviation map[string]float64 // gOO, gOH, gHH
	CurvesDouble map[string][2][]float64
	CurvesMixed  map[string][2][]float64
}

// Fig4 runs the complete train-then-simulate-then-compare pipeline.
func Fig4(sc Scale) (*Fig4Result, error) {
	cfg := waterModelConfig(sc)
	cfg.Seed = 11
	// Core-repulsion prior (DP+ZBL-style safeguard): energy-only training
	// cannot learn the repulsive wall below the sampled distances, so an
	// analytic wall keeps trajectories physical. It is inert above 0.8 A.
	cfg.RepA = 25
	cfg.RepRcut = 0.8

	// Train briefly on oracle-labeled frames so the potential is physical
	// enough for stable thermostatted MD.
	nx := waterNX(sc)
	base := lattice.Water(nx, nx, nx, lattice.WaterSpacing, 21)
	oracle := refpot.NewToyWater()
	spec := neighbor.Spec{Rcut: cfg.Rcut, Skin: cfg.Skin, Sel: cfg.Sel}
	nframes, trainSteps, mdSteps := 32, 700, 240
	if sc == Full {
		nframes, trainSteps, mdSteps = 64, 1500, 1000
	}
	// Cover the thermally accessible region and the short-range repulsive
	// wall: perturbed frames around equilibrium plus compressed-box frames
	// (energy-only training learns repulsion only if the data shows it).
	frames, err := train.GenData(oracle, base, spec, nframes, 0.01, 0.15, 31)
	if err != nil {
		return nil, err
	}
	squeezed := lattice.Water(nx, nx, nx, lattice.WaterSpacing*0.94, 22)
	more, err := train.GenData(oracle, squeezed, spec, nframes/2, 0.01, 0.12, 33)
	if err != nil {
		return nil, err
	}
	frames = append(frames, more...)
	cfg.AtomEnerBias = train.FitEnergyBias(frames, 2)
	model, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	tr, err := train.NewTrainer(model, train.Config{LR: 4e-3, BatchSize: 4, DecayRate: 0.96, DecaySteps: 50, Seed: 41})
	if err != nil {
		return nil, err
	}
	var loss float64
	for i := 0; i < trainSteps; i++ {
		if loss, err = tr.Step(frames); err != nil {
			return nil, err
		}
	}

	res := &Fig4Result{
		Molecules:    base.N() / 3,
		Steps:        mdSteps,
		TrainSteps:   trainSteps,
		FinalLoss:    loss,
		MaxDeviation: map[string]float64{},
		CurvesDouble: map[string][2][]float64{},
		CurvesMixed:  map[string][2][]float64{},
	}

	// Identical protocol in both precisions.
	run := func(pot md.Potential) (map[string]*analysis.RDF, error) {
		cell := lattice.Water(nx, nx, nx, lattice.WaterSpacing, 21)
		sys := &md.System{
			Pos:        append([]float64(nil), cell.Pos...),
			Types:      cell.Types,
			MassByType: cfg.Masses,
			Box:        cell.Box,
		}
		sys.InitVelocities(330, 7)
		sim, err := md.NewSim(sys, pot, md.Options{
			Dt:           0.0005,
			Spec:         spec,
			RebuildEvery: 10,
			ThermoEvery:  20,
			Thermostat:   &md.Berendsen{TargetK: 330, TauPs: 0.05},
			Workers:      cfg.Workers,
		})
		if err != nil {
			return nil, err
		}
		rmax := cell.Box.L[0] / 2 * 0.99
		rdfs := map[string]*analysis.RDF{
			"gOO": analysis.NewRDF(0, 0, rmax, 40),
			"gOH": analysis.NewRDF(0, 1, rmax, 40),
			"gHH": analysis.NewRDF(1, 1, rmax, 40),
		}
		// Equilibrate half, sample half.
		if err := sim.Run(sim.Opt.RebuildEvery * (res.Steps / 2 / sim.Opt.RebuildEvery)); err != nil {
			return nil, err
		}
		for s := 0; s < res.Steps/2; s += 10 {
			if err := sim.Run(10); err != nil {
				return nil, err
			}
			for _, r := range rdfs {
				r.Accumulate(sys.Pos, sys.Types, &sys.Box)
			}
		}
		return rdfs, nil
	}

	rdfD, err := run(core.NewEvaluator[float64](model))
	if err != nil {
		return nil, fmt.Errorf("double run: %w", err)
	}
	rdfM, err := run(core.NewEvaluator[float32](model))
	if err != nil {
		return nil, fmt.Errorf("mixed run: %w", err)
	}
	for _, name := range []string{"gOO", "gOH", "gHH"} {
		d, err := analysis.MaxDeviation(rdfD[name], rdfM[name])
		if err != nil {
			return nil, err
		}
		res.MaxDeviation[name] = d
		rs, g := rdfD[name].Curve()
		res.CurvesDouble[name] = [2][]float64{rs, g}
		rs2, g2 := rdfM[name].Curve()
		res.CurvesMixed[name] = [2][]float64{rs2, g2}
	}
	return res, nil
}

// String prints deviations and coarse curves.
func (r *Fig4Result) String() string {
	s := fmt.Sprintf("Fig 4: RDFs double vs mixed, %d molecules, %d MD steps (trained %d steps, final loss %.2e)\n",
		r.Molecules, r.Steps, r.TrainSteps, r.FinalLoss)
	for _, name := range []string{"gOO", "gOH", "gHH"} {
		s += fmt.Sprintf("  max |%s_double - %s_mixed| = %.4f\n", name, name, r.MaxDeviation[name])
	}
	s += "  (paper: curves indistinguishable; deviations at histogram-noise level)\n"
	return s
}
