package experiments

import (
	"fmt"
	"math"
	"time"

	"deepmd-go/internal/core"
	"deepmd-go/internal/neighbor"
	"deepmd-go/internal/perf"
)

// Fig3Result reproduces Fig. 3: the percent-stacked operator-time
// breakdown (GEMM / TANH / SLICE / CUSTOM / Others) for copper and water
// in both precisions. The paper's shape: GEMM dominates everywhere, with
// a larger share for copper (74%/72%) than water (63%/62%).
type Fig3Result struct {
	Columns []Fig3Column
}

// Fig3Column is one bar of the chart.
type Fig3Column struct {
	Label     string
	Breakdown map[string]float64
}

// Fig3 measures the breakdown by running a few force evaluations of each
// configuration with the perf counter attached.
func Fig3(sc Scale, steps int) (*Fig3Result, error) {
	res := &Fig3Result{}

	type variant struct {
		label string
		cfg   core.Config
		water bool
	}
	variants := []variant{
		{"Cu-Double", copperModelConfig(sc), false},
		{"Cu-Mixed", copperModelConfig(sc), false},
		{"H2O-Double", waterModelConfig(sc), true},
		{"H2O-Mixed", waterModelConfig(sc), true},
	}
	for vi, v := range variants {
		model, err := core.New(v.cfg)
		if err != nil {
			return nil, err
		}
		var pos []float64
		var types []int
		var list listAndBox
		if v.water {
			p, t, l, b, err := waterBox(&v.cfg, waterNX(sc), 1)
			if err != nil {
				return nil, err
			}
			pos, types, list = p, t, listAndBox{l, b}
		} else {
			p, t, l, b, err := copperBox(&v.cfg, copperNX(sc))
			if err != nil {
				return nil, err
			}
			pos, types, list = p, t, listAndBox{l, b}
		}
		ctr := perf.NewCounter()
		mixed := vi%2 == 1
		var out core.Result
		if mixed {
			ev := core.NewEvaluator[float32](model)
			ev.Counter = ctr
			for s := 0; s < steps; s++ {
				if err := ev.Compute(pos, types, len(types), list.l, list.b, &out); err != nil {
					return nil, err
				}
			}
		} else {
			ev := core.NewEvaluator[float64](model)
			ev.Counter = ctr
			for s := 0; s < steps; s++ {
				if err := ev.Compute(pos, types, len(types), list.l, list.b, &out); err != nil {
					return nil, err
				}
			}
		}
		res.Columns = append(res.Columns, Fig3Column{Label: v.label, Breakdown: ctr.Breakdown()})
	}
	return res, nil
}

// String prints the stacked percentages.
func (r *Fig3Result) String() string {
	cats := []string{"GEMM", "TANH", "SLICE", "CUSTOM", "Others"}
	rows := make([][]string, 0, len(r.Columns))
	for _, c := range r.Columns {
		row := []string{c.Label}
		for _, cat := range cats {
			row = append(row, fmt.Sprintf("%.1f%%", c.Breakdown[cat]))
		}
		rows = append(rows, row)
	}
	return "Fig 3: operator time breakdown (paper: GEMM 74/72/63/62% for Cu-D/Cu-M/H2O-D/H2O-M)\n" +
		table(append([]string{"Config"}, cats...), rows)
}

// MixedResult reproduces Sec. 7.1.3 / Sec. 5.2.3: accuracy and resource
// deviations of the mixed-precision model relative to double precision.
// Paper values for real water: 0.32 meV/molecule energy deviation, 0.029
// eV/A force RMSD, ~1.5x speed, ~50% memory.
type MixedResult struct {
	Atoms             int
	EnergyDevPerMol   float64 // eV
	ForceRMSD         float64 // eV/A
	SpeedupVsDouble   float64
	MemoryRatio       float64 // mixed arena bytes / double arena bytes
	DoubleTimePerEval time.Duration
	MixedTimePerEval  time.Duration
}

// Mixed measures the double/mixed contrast on a water box.
func Mixed(sc Scale, reps int) (*MixedResult, error) {
	cfg := waterModelConfig(sc)
	model, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	pos, types, list, box, err := waterBox(&cfg, waterNX(sc), 2)
	if err != nil {
		return nil, err
	}
	n := len(types)
	evD := core.NewEvaluator[float64](model)
	evM := core.NewEvaluator[float32](model)

	var rd, rm core.Result
	if err := evD.Compute(pos, types, n, list, box, &rd); err != nil {
		return nil, err
	}
	if err := evM.Compute(pos, types, n, list, box, &rm); err != nil {
		return nil, err
	}
	var rmsd float64
	for i := 0; i < 3*n; i++ {
		d := rd.Force[i] - rm.Force[i]
		rmsd += d * d
	}
	rmsd = math.Sqrt(rmsd / float64(3*n))

	timeEval := func(f func() error) (time.Duration, error) {
		start := time.Now()
		for r := 0; r < reps; r++ {
			if err := f(); err != nil {
				return 0, err
			}
		}
		return time.Since(start) / time.Duration(reps), nil
	}
	td, err := timeEval(func() error { return evD.Compute(pos, types, n, list, box, &rd) })
	if err != nil {
		return nil, err
	}
	tm, err := timeEval(func() error { return evM.Compute(pos, types, n, list, box, &rm) })
	if err != nil {
		return nil, err
	}

	nmol := n / 3
	return &MixedResult{
		Atoms:             n,
		EnergyDevPerMol:   math.Abs(rd.Energy-rm.Energy) / float64(nmol),
		ForceRMSD:         rmsd,
		SpeedupVsDouble:   float64(td) / float64(tm),
		MemoryRatio:       float64(evM.ArenaBytes()) / float64(evD.ArenaBytes()),
		DoubleTimePerEval: td,
		MixedTimePerEval:  tm,
	}, nil
}

// String prints the comparison.
func (r *MixedResult) String() string {
	return fmt.Sprintf(`Sec 7.1.3: mixed vs double precision, water %d atoms
  energy deviation    %.4f meV/molecule   (paper: 0.32)
  force RMSD          %.4f eV/A           (paper: 0.029)
  speedup             %.2fx               (paper: ~1.5x on GPU; scalar CPU f32 has no FLOP advantage)
  network memory      %.0f%% of double     (paper: ~50%%)
  time/eval           double %s ms, mixed %s ms
`, r.Atoms, r.EnergyDevPerMol*1000, r.ForceRMSD, r.SpeedupVsDouble, r.MemoryRatio*100,
		ms(r.DoubleTimePerEval), ms(r.MixedTimePerEval))
}

// SingleResult reproduces Sec. 7.1.1's aggregate contrast: the baseline
// execution strategy vs the optimized one vs optimized mixed, per force
// evaluation (paper: 7.5x double, 11.3x mixed, including all effects).
type SingleResult struct {
	Atoms    int
	Baseline time.Duration
	Double   time.Duration
	Mixed    time.Duration
}

// Single measures whole-evaluation times of the three strategies.
func Single(sc Scale, reps int) (*SingleResult, error) {
	cfg := waterModelConfig(sc)
	model, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	pos, types, list, box, err := waterBox(&cfg, waterNX(sc), 5)
	if err != nil {
		return nil, err
	}
	n := len(types)
	var out core.Result

	res := &SingleResult{Atoms: n}
	base := core.NewBaselineEvaluator(model)
	start := time.Now()
	for r := 0; r < reps; r++ {
		if err := base.Compute(pos, types, n, list, box, &out); err != nil {
			return nil, err
		}
	}
	res.Baseline = time.Since(start) / time.Duration(reps)

	evD := core.NewEvaluator[float64](model)
	start = time.Now()
	for r := 0; r < reps; r++ {
		if err := evD.Compute(pos, types, n, list, box, &out); err != nil {
			return nil, err
		}
	}
	res.Double = time.Since(start) / time.Duration(reps)

	evM := core.NewEvaluator[float32](model)
	start = time.Now()
	for r := 0; r < reps; r++ {
		if err := evM.Compute(pos, types, n, list, box, &out); err != nil {
			return nil, err
		}
	}
	res.Mixed = time.Since(start) / time.Duration(reps)
	return res, nil
}

// String prints the aggregate speedups.
func (r *SingleResult) String() string {
	return fmt.Sprintf(`Sec 7.1.1: whole-evaluation strategies, water %d atoms
  baseline (2018 DeePMD-kit strategy)  %s ms
  optimized double                     %s ms   (%.1fx vs baseline; paper 7.5x w/ GPU)
  optimized mixed                      %s ms   (%.1fx vs baseline; paper 11.3x w/ GPU)
`, r.Atoms, ms(r.Baseline), ms(r.Double), float64(r.Baseline)/float64(r.Double),
		ms(r.Mixed), float64(r.Baseline)/float64(r.Mixed))
}

type listAndBox struct {
	l *neighbor.List
	b *neighbor.Box
}

func waterNX(sc Scale) int {
	if sc == Full {
		return 6
	}
	return 4
}

func copperNX(sc Scale) int {
	if sc == Full {
		return 6
	}
	return 4
}
