package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"runtime"
	"sort"
	"sync"
	"time"

	"deepmd-go/internal/core"
	"deepmd-go/internal/serve"
)

// LoadRow is one (leg, concurrency) cell of the serving load experiment:
// aggregate throughput and per-request latency percentiles for `Conc`
// concurrent callers issuing back-to-back evaluate requests.
type LoadRow struct {
	// Leg identifies the serving path: "pool" evaluates per request on
	// the PR 5 evaluator pool, "batch" routes through the internal/serve
	// micro-batcher, "http" drives a running dpserve daemon.
	Leg  string
	Conc int
	// PerOp is aggregate wall time per evaluation (wall / total
	// requests) — inverse throughput.
	PerOp time.Duration
	// P50/P95/P99 are per-request latency percentiles.
	P50, P95, P99 time.Duration
	// Speedup is the aggregate-throughput gain of this row against the
	// pool leg at the same concurrency (1 for pool rows; against the
	// single-caller row for http legs).
	Speedup float64
	// Coalesce is the realized frames-per-batch of the batch leg (1 on
	// the pool leg, 0 when the daemon's counters are not visible).
	Coalesce float64
}

// LoadResult is the `dpbench -exp load` experiment (ISSUE 7): offered
// load vs. throughput/latency of the serving path, contrasting
// per-request pool evaluation (the PR 5 baseline, BENCH_PR5.json) with
// cross-request micro-batching at the same concurrency. Every batch-leg
// response is verified bit-identical to a serial reference evaluation as
// it is measured — coalescing must never change the physics. With a -url,
// the same load is driven over HTTP against a running dpserve daemon
// (whose deterministic built-in model allows the same verification).
type LoadResult struct {
	Atoms int
	URL   string
	Rows  []LoadRow
}

// loadVariants is how many distinct systems the callers cycle through, so
// a coalesced batch mixes different frames (the serving reality) instead
// of identical ones.
const loadVariants = 3

// Load measures serving throughput and latency at 1, 2, 4 and conc
// concurrent callers on the Quick water shape. When url is non-empty the
// load is driven over HTTP against a dpserve daemon at that base URL
// instead of in-process (one leg, no pool contrast).
func Load(sc Scale, conc int, url string) (*LoadResult, error) {
	if conc <= 0 {
		conc = 8
	}
	// Concurrency ladder up to the requested level: 1, 2, 4, ..., conc.
	var concs []int
	for _, c := range []int{1, 2, 4} {
		if c < conc {
			concs = append(concs, c)
		}
	}
	concs = append(concs, conc)
	evalsPerCaller, rounds := 8, 2
	if sc == Full {
		evalsPerCaller = 16
	}

	cfg := waterModelConfig(sc)
	model, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	// One frame variant per caller slot, cycled; serial references are
	// the bit-identity oracle for every measured response.
	type variant struct {
		pos   []float64
		types []int
		lb    listAndBox
		ref   core.Result
	}
	maxConc := concs[len(concs)-1]
	engine, err := core.NewEngine(model, core.Plan{Workers: 1, MaxConcurrency: maxConc})
	if err != nil {
		return nil, err
	}
	variants := make([]variant, loadVariants)
	for i := range variants {
		p, t, l, b, err := waterBox(&cfg, waterNX(sc), int64(3+2*i))
		if err != nil {
			return nil, err
		}
		variants[i] = variant{pos: p, types: t, lb: listAndBox{l, b}}
		if err := engine.EvaluateInto(p, t, len(t), l, b, &variants[i].ref); err != nil {
			return nil, err
		}
	}
	n := len(variants[0].types)
	res := &LoadResult{Atoms: n, URL: url}

	// drive fans c callers over the variants, each issuing
	// evalsPerCaller requests through eval, and returns the merged
	// per-request latencies plus the aggregate wall time.
	drive := func(c int, eval func(g int, v *variant, ref *core.Result) error) ([]time.Duration, time.Duration, error) {
		lats := make([][]time.Duration, c)
		errs := make([]error, c)
		var wg sync.WaitGroup
		start := time.Now()
		for g := 0; g < c; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				v := &variants[g%loadVariants]
				for k := 0; k < evalsPerCaller; k++ {
					t0 := time.Now()
					if err := eval(g, v, &v.ref); err != nil {
						errs[g] = err
						return
					}
					lats[g] = append(lats[g], time.Since(t0))
				}
			}(g)
		}
		wg.Wait()
		wall := time.Since(start)
		var merged []time.Duration
		for g := 0; g < c; g++ {
			if errs[g] != nil {
				return nil, 0, errs[g]
			}
			merged = append(merged, lats[g]...)
		}
		sort.Slice(merged, func(i, j int) bool { return merged[i] < merged[j] })
		return merged, wall, nil
	}
	// measure warms the path once un-measured (arena and batch-slot
	// growth), then keeps the best-wall round — the same best-of-rounds
	// policy the other experiments use against scheduler noise.
	measure := func(leg string, c int, eval func(g int, v *variant, ref *core.Result) error) (LoadRow, error) {
		if _, _, err := drive(c, eval); err != nil {
			return LoadRow{}, err
		}
		var best []time.Duration
		var bestWall time.Duration
		for r := 0; r < rounds; r++ {
			lats, wall, err := drive(c, eval)
			if err != nil {
				return LoadRow{}, err
			}
			if bestWall == 0 || wall < bestWall {
				bestWall, best = wall, lats
			}
		}
		return LoadRow{
			Leg: leg, Conc: c,
			PerOp: bestWall / time.Duration(len(best)),
			P50:   percentile(best, 0.50),
			P95:   percentile(best, 0.95),
			P99:   percentile(best, 0.99),
		}, nil
	}

	if url != "" {
		// HTTP legs against a running daemon. The daemon's built-in tiny
		// water model is deterministic (same config, same seed), so the
		// local references remain the bit-identity oracle.
		client := &http.Client{Timeout: 60 * time.Second}
		bodies := make([][]byte, loadVariants)
		for i, v := range variants {
			b, err := json.Marshal(map[string]any{"pos": v.pos, "types": v.types, "box": v.lb.b.L})
			if err != nil {
				return nil, err
			}
			bodies[i] = b
		}
		var base LoadRow
		for _, c := range concs {
			r, err := measure("http", c, func(g int, v *variant, ref *core.Result) error {
				return httpEvaluate(client, url, bodies[g%loadVariants], ref)
			})
			if err != nil {
				return nil, fmt.Errorf("experiments: load: http leg c=%d: %w", c, err)
			}
			if base.PerOp == 0 {
				base = r
			}
			r.Speedup = float64(base.PerOp) / float64(r.PerOp)
			res.Rows = append(res.Rows, r)
		}
		return res, nil
	}

	// Warm the pool once so both legs measure steady state.
	if err := engine.Prewarm(variants[0].pos, variants[0].types, n, variants[0].lb.l, variants[0].lb.b); err != nil {
		return nil, err
	}
	outs := make([]core.Result, maxConc)
	for _, c := range concs {
		// Pool leg: per-request evaluation on the engine's evaluator pool,
		// exactly the PR 5 serving configuration.
		pool, err := measure("pool", c, func(g int, v *variant, ref *core.Result) error {
			out := &outs[g]
			if err := engine.EvaluateInto(v.pos, v.types, n, v.lb.l, v.lb.b, out); err != nil {
				return err
			}
			return verifyBits("pool", out, ref)
		})
		if err != nil {
			return nil, err
		}
		pool.Speedup = 1
		pool.Coalesce = 1

		// Batch leg: same callers, same frames, but requests coalesce in
		// the micro-batcher. Opportunistic window (no added latency):
		// whatever queues behind busy dispatchers joins the next sweep.
		bat := serve.New(engine, serve.Options{
			Window:      -1,
			MaxBatch:    c,
			QueueLimit:  4 * c,
			Dispatchers: min(c, runtime.GOMAXPROCS(0)),
		})
		batch, err := measure("batch", c, func(g int, v *variant, ref *core.Result) error {
			out := &outs[g]
			if err := bat.Compute(v.pos, v.types, n, v.lb.l, v.lb.b, out); err != nil {
				return err
			}
			return verifyBits("batch", out, ref)
		})
		st := bat.Stats()
		if cerr := bat.Close(context.Background()); err == nil {
			err = cerr
		}
		if err != nil {
			return nil, err
		}
		batch.Speedup = float64(pool.PerOp) / float64(batch.PerOp)
		if st.Batches > 0 {
			batch.Coalesce = float64(st.Frames) / float64(st.Batches)
		}
		res.Rows = append(res.Rows, pool, batch)
	}
	return res, nil
}

// verifyBits checks a measured result against its serial reference —
// bit-identical forces, equal energy — and fails the experiment loudly
// otherwise.
func verifyBits(leg string, out, ref *core.Result) error {
	if out.Energy != ref.Energy {
		return fmt.Errorf("experiments: load: %s leg energy %.17g != serial %.17g", leg, out.Energy, ref.Energy)
	}
	for i := range ref.Force {
		if math.Float64bits(out.Force[i]) != math.Float64bits(ref.Force[i]) {
			return fmt.Errorf("experiments: load: %s leg force[%d] differs from serial", leg, i)
		}
	}
	return nil
}

// httpEvaluate posts one evaluate request to a dpserve daemon and
// verifies the response against the serial reference. JSON float64
// round-trips exactly (shortest-repr encoding), so bitwise comparison
// remains valid over the wire.
func httpEvaluate(client *http.Client, base string, body []byte, ref *core.Result) error {
	resp, err := client.Post(base+"/v1/evaluate", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	var out struct {
		Energy float64   `json:"energy"`
		Forces []float64 `json:"forces"`
		Error  string    `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return fmt.Errorf("decode response (status %d): %w", resp.StatusCode, err)
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("daemon answered %d: %s", resp.StatusCode, out.Error)
	}
	if out.Energy != ref.Energy {
		return fmt.Errorf("http energy %.17g != serial %.17g", out.Energy, ref.Energy)
	}
	for i := range ref.Force {
		if math.Float64bits(out.Forces[i]) != math.Float64bits(ref.Force[i]) {
			return fmt.Errorf("http force[%d] differs from serial", i)
		}
	}
	return nil
}

// percentile picks the p-quantile of sorted latencies by
// nearest-rank.
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(math.Ceil(p*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// String prints the load table.
func (r *LoadResult) String() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, w := range r.Rows {
		coalesce := "-"
		if w.Coalesce > 0 {
			coalesce = fmt.Sprintf("%.2f", w.Coalesce)
		}
		rows = append(rows, []string{
			w.Leg,
			fmt.Sprintf("%d", w.Conc),
			ms(w.PerOp),
			ms(w.P50),
			ms(w.P95),
			ms(w.P99),
			coalesce,
			fmt.Sprintf("%.2f", w.Speedup),
		})
	}
	head := fmt.Sprintf("Serving load: %d-atom water frames, per-request pool vs cross-request micro-batching (ms; every response verified bit-identical to serial)\n", r.Atoms)
	if r.URL != "" {
		head = fmt.Sprintf("Serving load over HTTP against %s (%d-atom water frames, ms; responses verified bit-identical to serial)\n", r.URL, r.Atoms)
	}
	return head + table([]string{"leg", "conc", "agg/eval", "p50", "p95", "p99", "coalesce", "speedup"}, rows)
}

// Records emits the machine-readable rows for BENCH_PR7.json.
func (r *LoadResult) Records() []Record {
	recs := make([]Record, 0, len(r.Rows))
	for _, w := range r.Rows {
		recs = append(recs, Record{
			Experiment: "load",
			Shape:      fmt.Sprintf("water-%datoms/%s-c%d", r.Atoms, w.Leg, w.Conc),
			NsPerOp:    float64(w.PerOp.Nanoseconds()),
			Speedup:    w.Speedup,
			P50Ns:      float64(w.P50.Nanoseconds()),
			P95Ns:      float64(w.P95.Nanoseconds()),
			P99Ns:      float64(w.P99.Nanoseconds()),
		})
	}
	return recs
}
