package experiments

import (
	"fmt"
	"runtime"
	"time"

	"deepmd-go/internal/lattice"
	"deepmd-go/internal/neighbor"
)

// NeighborResult is the serial-vs-parallel neighbor-list construction
// contrast. The companion work (Lu et al., arXiv:2004.11658) identifies
// environment/neighbor construction as a first-order cost at scale; this
// experiment shows the cell-binned build scaling over goroutines while
// producing bit-identical lists.
type NeighborResult struct {
	Atoms   int
	Pairs   int // total neighbor entries in the list
	Workers []int
	Times   []time.Duration // best-of-reps per worker count; Workers[0]=1 is the serial baseline
}

// NeighborBuild measures neighbor.Build on a water box at 1..maxWorkers
// goroutines (powers of two). Quick uses a small box; Full uses a
// ~100k-atom system, the scale of one GPU's sub-domain in the paper.
func NeighborBuild(sc Scale, maxWorkers int) (*NeighborResult, error) {
	nx, reps := 12, 5
	if sc == Full {
		nx, reps = 33, 3
	}
	if maxWorkers <= 0 {
		maxWorkers = runtime.NumCPU()
	}
	cell := lattice.Water(nx, nx, nx, lattice.WaterSpacing, 9)
	spec := neighbor.Spec{Rcut: 4.0, Skin: 1.0, Sel: []int{12, 24}}

	counts := []int{}
	for w := 1; w < maxWorkers; w *= 2 {
		counts = append(counts, w)
	}
	counts = append(counts, maxWorkers)

	res := &NeighborResult{Atoms: cell.N()}
	var ref *neighbor.List
	for _, w := range counts {
		best := time.Duration(0)
		var list *neighbor.List
		for r := 0; r < reps; r++ {
			start := time.Now()
			l, err := neighbor.Build(spec, cell.Pos, cell.Types, cell.N(), &cell.Box, w)
			if err != nil {
				return nil, err
			}
			if el := time.Since(start); best == 0 || el < best {
				best = el
			}
			list = l
		}
		if ref == nil {
			ref = list
			for _, row := range ref.Entries {
				res.Pairs += len(row)
			}
		} else if err := sameList(ref, list); err != nil {
			return nil, fmt.Errorf("experiments: workers=%d: %w", w, err)
		}
		res.Workers = append(res.Workers, w)
		res.Times = append(res.Times, best)
	}
	return res, nil
}

// sameList verifies two lists are bit-identical (same rows, same order).
func sameList(a, b *neighbor.List) error {
	if a.Nloc != b.Nloc {
		return fmt.Errorf("nloc %d != %d", a.Nloc, b.Nloc)
	}
	for i := range a.Entries {
		ra, rb := a.Entries[i], b.Entries[i]
		if len(ra) != len(rb) {
			return fmt.Errorf("atom %d: %d entries != %d", i, len(ra), len(rb))
		}
		for k := range ra {
			if ra[k] != rb[k] {
				return fmt.Errorf("atom %d entry %d: %+v != %+v", i, k, ra[k], rb[k])
			}
		}
	}
	return nil
}

func (r *NeighborResult) String() string {
	rows := make([][]string, 0, len(r.Workers))
	serial := r.Times[0]
	for i, w := range r.Workers {
		rows = append(rows, []string{
			fmt.Sprint(w),
			fmt.Sprintf("%.2f", r.Times[i].Seconds()*1000),
			fmt.Sprintf("%.2f", float64(serial)/float64(r.Times[i])),
		})
	}
	return fmt.Sprintf("Neighbor build: %d atoms, %d pairs (parallel lists verified bit-identical)\n", r.Atoms, r.Pairs) +
		table([]string{"workers", "build[ms]", "speedup"}, rows)
}
