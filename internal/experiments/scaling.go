package experiments

import (
	"fmt"
	"time"

	"deepmd-go/internal/core"
	"deepmd-go/internal/domain"
	"deepmd-go/internal/lattice"
	"deepmd-go/internal/md"
	"deepmd-go/internal/neighbor"
	"deepmd-go/internal/perfmodel"
	"deepmd-go/internal/units"
)

// Fig5Table reproduces Fig. 5 via the calibrated Summit model: strong
// scaling of water (12.58M atoms) and copper (25.74M atoms).
func Fig5Table() string {
	m := perfmodel.Summit()
	out := "Fig 5(a): water strong scaling, 12,582,912 atoms (model)\n"
	nodes := []int{80, 160, 320, 640, 1280, 2560, 4560}
	out += scalingTable(perfmodel.WaterModel(), m, nodes, 12_582_912, true)
	out += "\nFig 5(b): copper strong scaling, 25,739,424 atoms (model)\n"
	nodes = []int{570, 1140, 2280, 4560}
	out += scalingTable(perfmodel.CopperModel(), m, nodes, 25_739_424, true)
	return out
}

// Fig6Table reproduces Fig. 6 via the model: weak scaling at the paper's
// atoms-per-GPU loads.
func Fig6Table() string {
	m := perfmodel.Summit()
	nodes := []int{285, 570, 1140, 2280, 4560}
	out := "Fig 6(a): water weak scaling, 14,722 atoms/GPU (model)\n"
	out += weakTable(perfmodel.WaterModel(), m, 402_653_184/(4560*6), nodes)
	out += "\nFig 6(b): copper weak scaling, 4,139 atoms/GPU (model)\n"
	out += weakTable(perfmodel.CopperModel(), m, 113_246_208/(4560*6), nodes)
	return out
}

// Table4Text reproduces Table 4 (water strong-scaling detail) from the
// model, including geometric ghost counts.
func Table4Text() string {
	m := perfmodel.Summit()
	w := perfmodel.WaterModel()
	gpus := []int{480, 960, 1920, 3840, 7680, 15360, 27360}
	nodes := make([]int, len(gpus))
	for i, g := range gpus {
		nodes[i] = g / m.GPUsPerNode
	}
	pts := w.StrongScaling(m, 12_582_912, nodes, false)
	rows := make([][]string, 0, len(pts))
	for _, p := range pts {
		rows = append(rows, []string{
			fmt.Sprint(p.GPUs), fmt.Sprint(p.AtomsPerGPU), fmt.Sprint(p.Ghosts),
			fmt.Sprintf("%.2f", p.TtS.Seconds()*500),
			fmt.Sprintf("%.2f", p.Efficiency),
			fmt.Sprintf("%.2f", p.PFLOPS),
			fmt.Sprintf("%.2f", p.PctPeak*100),
		})
	}
	return "Table 4: water 12,582,912 atoms strong-scaling detail (model; paper values in EXPERIMENTS.md)\n" +
		table([]string{"#GPUs", "#atoms", "#ghosts", "MDtime[s/500]", "Efficiency", "PFLOPS", "%ofPeak"}, rows)
}

func scalingTable(s perfmodel.SystemModel, m perfmodel.Machine, nodes []int, atoms int, mixedToo bool) string {
	d := s.StrongScaling(m, atoms, nodes, false)
	x := s.StrongScaling(m, atoms, nodes, true)
	rows := make([][]string, 0, len(d))
	for i := range d {
		row := []string{
			fmt.Sprint(d[i].Nodes),
			fmt.Sprint(d[i].AtomsPerGPU),
			fmt.Sprintf("%.1f", float64(d[i].TtS.Microseconds())/1000),
			fmt.Sprintf("%.1f", d[i].PFLOPS),
			fmt.Sprintf("%.2f", d[i].Efficiency),
		}
		if mixedToo {
			row = append(row, fmt.Sprintf("%.1f", float64(x[i].TtS.Microseconds())/1000), fmt.Sprintf("%.1f", x[i].PFLOPS))
		}
		rows = append(rows, row)
	}
	hdr := []string{"Nodes", "Atoms/GPU", "TtS-dbl[ms]", "PFLOPS-dbl", "Eff-dbl"}
	if mixedToo {
		hdr = append(hdr, "TtS-mix[ms]", "PFLOPS-mix")
	}
	return table(hdr, rows)
}

func weakTable(s perfmodel.SystemModel, m perfmodel.Machine, perGPU int, nodes []int) string {
	d := s.WeakScaling(m, perGPU, nodes, false)
	x := s.WeakScaling(m, perGPU, nodes, true)
	rows := make([][]string, 0, len(d))
	for i := range d {
		rows = append(rows, []string{
			fmt.Sprint(d[i].Nodes),
			fmt.Sprintf("%.1fM", float64(d[i].Atoms)/1e6),
			fmt.Sprintf("%.1f", d[i].PFLOPS),
			fmt.Sprintf("%.1f", x[i].PFLOPS),
			fmt.Sprintf("%.2f", d[i].PctPeak*100),
			fmt.Sprintf("%.2f", d[i].NsPerDay),
		})
	}
	return table([]string{"Nodes", "Atoms", "PFLOPS-dbl", "PFLOPS-mix", "%Peak-dbl", "ns/day"}, rows)
}

// LocalScalingResult measures *real* strong scaling of the
// domain-decomposed implementation on simulated ranks: communication
// protocol costs are real, compute is shared on however many cores the
// host has. On a single-core host the interesting observable is the
// communication/work ratio; on multi-core hosts wall-clock speedup
// appears.
type LocalScalingResult struct {
	Atoms int
	Rows  []LocalScalingRow
}

// LocalScalingRow is one rank-count measurement.
type LocalScalingRow struct {
	Ranks        int
	LoopTime     time.Duration
	Messages     int64
	Bytes        int64
	MaxAtoms     int
	MaxGhosts    int
	GhostsPerLoc float64
}

// LocalScaling runs the same short DP simulation on 1..maxRanks ranks.
func LocalScaling(sc Scale, steps int, rankCounts []int) (*LocalScalingResult, error) {
	cfg := core.TinyConfig(1)
	cfg.Rcut, cfg.RcutSmth, cfg.Skin = 4.0, 1.0, 1.0
	cfg.Sel = []int{40}
	model, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	nx := 6
	if sc == Full {
		nx = 8
	}
	cell := lattice.FCC(nx, nx, nx, 4.05)
	res := &LocalScalingResult{Atoms: cell.N()}
	spec := neighbor.Spec{Rcut: cfg.Rcut, Skin: cfg.Skin, Sel: cfg.Sel}

	for _, ranks := range rankCounts {
		sys := &md.System{
			Pos:        append([]float64(nil), cell.Pos...),
			Types:      cell.Types,
			MassByType: []float64{units.MassCu},
			Box:        cell.Box,
			Vel:        make([]float64, 3*cell.N()),
		}
		sys.InitVelocities(300, 3)
		stats, err := domain.Run(sys, func() md.Potential { return core.NewEvaluator[float64](model) }, domain.Options{
			Ranks: ranks, Dt: 0.001, Steps: steps, Spec: spec,
			RebuildEvery: 10, ThermoEvery: 20,
		})
		if err != nil {
			return nil, fmt.Errorf("ranks=%d: %w", ranks, err)
		}
		row := LocalScalingRow{Ranks: ranks, LoopTime: stats.LoopTime, Messages: stats.Messages, Bytes: stats.Bytes}
		for r := 0; r < ranks; r++ {
			if stats.AtomsPerRank[r] > row.MaxAtoms {
				row.MaxAtoms = stats.AtomsPerRank[r]
			}
			if stats.GhostsPerRank[r] > row.MaxGhosts {
				row.MaxGhosts = stats.GhostsPerRank[r]
			}
		}
		if row.MaxAtoms > 0 {
			row.GhostsPerLoc = float64(row.MaxGhosts) / float64(row.MaxAtoms)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// String prints the local scaling rows.
func (r *LocalScalingResult) String() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			fmt.Sprint(row.Ranks),
			fmt.Sprintf("%.1f", row.LoopTime.Seconds()*1000),
			fmt.Sprint(row.Messages),
			fmt.Sprint(row.Bytes),
			fmt.Sprint(row.MaxAtoms),
			fmt.Sprint(row.MaxGhosts),
			fmt.Sprintf("%.2f", row.GhostsPerLoc),
		})
	}
	return fmt.Sprintf("Real domain-decomposed strong scaling, DP potential, %d atoms (simulated ranks on this host)\n", r.Atoms) +
		table([]string{"Ranks", "Loop[ms]", "Msgs", "Bytes", "MaxAtoms", "MaxGhosts", "Ghost/Local"}, rows)
}

// SetupText runs the Sec. 7.3 setup experiment on simulated ranks.
func SetupText(sc Scale, ranks int) (string, *domain.SetupResult, error) {
	cfg := core.TinyConfig(1)
	if sc == Full {
		cfg.EmbedWidths = []int{25, 50, 100}
		cfg.FitWidths = []int{240, 240, 240}
		cfg.MAxis = 16
	}
	model, err := core.New(cfg)
	if err != nil {
		return "", nil, err
	}
	dir, err := tempModelFile(model)
	if err != nil {
		return "", nil, err
	}
	nx := 8
	if sc == Full {
		nx = 16
	}
	builder := func() *md.System {
		cell := lattice.FCC(nx, nx, nx, lattice.CuLatticeConst)
		return &md.System{Pos: cell.Pos, Types: cell.Types, MassByType: []float64{units.MassCu}, Box: cell.Box}
	}
	res, err := domain.MeasureSetup(builder, dir, ranks)
	if err != nil {
		return "", nil, err
	}
	txt := fmt.Sprintf(`Sec 7.3: setup strategies on %d ranks (paper: >240 s -> <5 s at 4560 nodes)
  atomic structure: rank-0 build + distribute  %.2f ms
                    replicated local build     %.2f ms
  model staging:    every rank reads file      %.2f ms
                    read once + broadcast      %.2f ms
  total setup speedup: %.1fx
`, ranks,
		res.BaselineAtoms.Seconds()*1000, res.OptimizedAtoms.Seconds()*1000,
		res.BaselineModel.Seconds()*1000, res.OptimizedModel.Seconds()*1000,
		res.Speedup())
	return txt, res, nil
}
