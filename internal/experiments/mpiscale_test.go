package experiments

import (
	"strings"
	"testing"
)

// A short mpiscale run must produce a row per (case, transport), pass its
// own built-in bit-identity differential (MPIScaling errors out if a TCP
// leg diverges from the in-process oracle), and emit well-formed records.
func TestMPIScalingShape(t *testing.T) {
	if testing.Short() {
		t.Skip("spins up TCP worlds at ranks up to 8")
	}
	res, err := MPIScaling(Quick, 2)
	if err != nil {
		t.Fatal(err)
	}
	wantRows := 2 * len(mpiscaleCases())
	if len(res.Rows) != wantRows {
		t.Fatalf("got %d rows, want %d", len(res.Rows), wantRows)
	}
	for _, row := range res.Rows {
		if !row.BitIdentical {
			t.Errorf("%s ranks=%d %s: not bit-identical", row.Mode, row.Ranks, row.Transport)
		}
		if row.Ranks > 1 && row.Messages == 0 {
			t.Errorf("%s ranks=%d %s: no messages counted", row.Mode, row.Ranks, row.Transport)
		}
		if row.WireBytes < row.Bytes {
			t.Errorf("%s ranks=%d %s: wire bytes %d below payload bytes %d",
				row.Mode, row.Ranks, row.Transport, row.WireBytes, row.Bytes)
		}
		if row.Overlap < 0 || row.Overlap > 1 {
			t.Errorf("%s ranks=%d %s: overlap %v outside [0,1]", row.Mode, row.Ranks, row.Transport, row.Overlap)
		}
	}
	recs := res.Records()
	if len(recs) != wantRows {
		t.Fatalf("got %d records, want %d", len(recs), wantRows)
	}
	for _, rec := range recs {
		if rec.Experiment != "mpiscale" || rec.NsPerOp <= 0 {
			t.Errorf("bad record %+v", rec)
		}
		if strings.HasPrefix(rec.Shape, "strong/") && strings.Contains(rec.Shape, "ranks=1") && rec.Speedup != 1 {
			t.Errorf("reference leg %s has speedup %v, want 1", rec.Shape, rec.Speedup)
		}
	}
	if !strings.Contains(res.String(), "Ranks") {
		t.Error("table missing header")
	}
}
