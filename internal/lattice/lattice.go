// Package lattice builds the atomic configurations of the paper's
// experiments: FCC copper supercells (strong/weak scaling, Table 1),
// liquid-water boxes of (O, H, H) triplets (Figs. 4-6), and the
// nanocrystalline copper of the Fig. 7 application (random Voronoi grains
// with random crystallographic orientations).
//
// Builders are deterministic given their seed, which is what makes the
// paper's replicated setup optimization possible (Sec. 7.3: every MPI rank
// constructs the atomic structure locally "without communication").
package lattice

import (
	"math"
	"math/rand"

	"deepmd-go/internal/neighbor"
)

// System is a built configuration.
type System struct {
	Pos   []float64
	Types []int
	Box   neighbor.Box
}

// N returns the number of atoms.
func (s *System) N() int { return len(s.Types) }

// CuLatticeConst is the copper FCC lattice constant in Angstrom.
const CuLatticeConst = 3.615

// FCC builds an nx x ny x nz supercell of the FCC lattice with constant a;
// all atoms have type 0. Atom count is 4*nx*ny*nz.
func FCC(nx, ny, nz int, a float64) *System {
	basis := [4][3]float64{
		{0, 0, 0},
		{0.5, 0.5, 0},
		{0.5, 0, 0.5},
		{0, 0.5, 0.5},
	}
	n := 4 * nx * ny * nz
	s := &System{
		Pos:   make([]float64, 0, 3*n),
		Types: make([]int, n),
		Box:   neighbor.Box{L: [3]float64{float64(nx) * a, float64(ny) * a, float64(nz) * a}},
	}
	for ix := 0; ix < nx; ix++ {
		for iy := 0; iy < ny; iy++ {
			for iz := 0; iz < nz; iz++ {
				for _, b := range basis {
					s.Pos = append(s.Pos,
						(float64(ix)+b[0])*a,
						(float64(iy)+b[1])*a,
						(float64(iz)+b[2])*a)
				}
			}
		}
	}
	return s
}

// WaterSpacing is the cubic molecule spacing that reproduces liquid water
// density (~0.997 g/cm^3): one molecule per (3.104 A)^3.
const WaterSpacing = 3.104

// Water builds nx x ny x nz water molecules on a cubic lattice with the
// given spacing, each with a randomized orientation (seeded). Atoms are
// (O, H, H) triplets; O is type 0, H is type 1. Total atoms 3*nx*ny*nz.
func Water(nx, ny, nz int, spacing float64, seed int64) *System {
	rng := rand.New(rand.NewSource(seed))
	nmol := nx * ny * nz
	s := &System{
		Pos:   make([]float64, 0, 9*nmol),
		Types: make([]int, 0, 3*nmol),
		Box:   neighbor.Box{L: [3]float64{float64(nx) * spacing, float64(ny) * spacing, float64(nz) * spacing}},
	}
	const (
		rOH   = 0.9572
		theta = 104.52 * math.Pi / 180
	)
	for ix := 0; ix < nx; ix++ {
		for iy := 0; iy < ny; iy++ {
			for iz := 0; iz < nz; iz++ {
				ox := (float64(ix) + 0.5) * spacing
				oy := (float64(iy) + 0.5) * spacing
				oz := (float64(iz) + 0.5) * spacing
				rot := randomRotation(rng)
				// Molecule frame: O at origin, H's in the xz plane.
				h1 := [3]float64{rOH * math.Sin(theta/2), 0, rOH * math.Cos(theta/2)}
				h2 := [3]float64{-rOH * math.Sin(theta/2), 0, rOH * math.Cos(theta/2)}
				h1 = matVec(rot, h1)
				h2 = matVec(rot, h2)
				s.Pos = append(s.Pos, ox, oy, oz)
				s.Pos = append(s.Pos, ox+h1[0], oy+h1[1], oz+h1[2])
				s.Pos = append(s.Pos, ox+h2[0], oy+h2[1], oz+h2[2])
				s.Types = append(s.Types, 0, 1, 1)
			}
		}
	}
	return s
}

// Perturb displaces every coordinate by a uniform random amount in
// [-amp, amp]; used to generate training configurations off the perfect
// lattice.
func Perturb(s *System, amp float64, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	for i := range s.Pos {
		s.Pos[i] += amp * (2*rng.Float64() - 1)
	}
}

// randomRotation returns a uniformly random rotation matrix (via a random
// unit quaternion).
func randomRotation(rng *rand.Rand) [3][3]float64 {
	// Shoemake's method.
	u1, u2, u3 := rng.Float64(), rng.Float64(), rng.Float64()
	q0 := math.Sqrt(1-u1) * math.Sin(2*math.Pi*u2)
	q1 := math.Sqrt(1-u1) * math.Cos(2*math.Pi*u2)
	q2 := math.Sqrt(u1) * math.Sin(2*math.Pi*u3)
	q3 := math.Sqrt(u1) * math.Cos(2*math.Pi*u3)
	return quatToMatrix(q0, q1, q2, q3)
}

func quatToMatrix(w, x, y, z float64) [3][3]float64 {
	return [3][3]float64{
		{1 - 2*(y*y+z*z), 2 * (x*y - w*z), 2 * (x*z + w*y)},
		{2 * (x*y + w*z), 1 - 2*(x*x+z*z), 2 * (y*z - w*x)},
		{2 * (x*z - w*y), 2 * (y*z + w*x), 1 - 2*(x*x+y*y)},
	}
}

func matVec(m [3][3]float64, v [3]float64) [3]float64 {
	return [3]float64{
		m[0][0]*v[0] + m[0][1]*v[1] + m[0][2]*v[2],
		m[1][0]*v[0] + m[1][1]*v[1] + m[1][2]*v[2],
		m[2][0]*v[0] + m[2][1]*v[1] + m[2][2]*v[2],
	}
}
