package lattice

import (
	"math"
	"math/rand"

	"deepmd-go/internal/neighbor"
)

// Nanocrystal builds a nanocrystalline FCC metal in a cubic box of edge l
// (Angstrom) from ngrains Voronoi grains, each a randomly oriented,
// randomly shifted FCC crystal with lattice constant a. Atoms closer than
// minSep to an atom of an earlier grain (across the grain boundary) are
// removed, which is the standard recipe for Schiotz-style nanocrystalline
// samples (Fig. 7(a) of the paper: "64 randomly oriented crystals with
// 15-nm averaged grain diameter").
func Nanocrystal(l float64, ngrains int, a, minSep float64, seed int64) *System {
	rng := rand.New(rand.NewSource(seed))
	box := neighbor.Box{L: [3]float64{l, l, l}}

	// Grain seeds (Voronoi centers) and orientations.
	centers := make([][3]float64, ngrains)
	rots := make([][3][3]float64, ngrains)
	shifts := make([][3]float64, ngrains)
	for g := range centers {
		centers[g] = [3]float64{rng.Float64() * l, rng.Float64() * l, rng.Float64() * l}
		rots[g] = randomRotation(rng)
		shifts[g] = [3]float64{rng.Float64() * a, rng.Float64() * a, rng.Float64() * a}
	}

	// ownerOf returns the grain whose (periodic) center is nearest.
	ownerOf := func(p [3]float64) int {
		best, bd := 0, math.Inf(1)
		for g, c := range centers {
			d := [3]float64{p[0] - c[0], p[1] - c[1], p[2] - c[2]}
			box.MinImage(&d)
			r2 := d[0]*d[0] + d[1]*d[1] + d[2]*d[2]
			if r2 < bd {
				bd, best = r2, g
			}
		}
		return best
	}

	basis := [4][3]float64{{0, 0, 0}, {0.5, 0.5, 0}, {0.5, 0, 0.5}, {0, 0.5, 0.5}}
	s := &System{Box: box}

	// For each grain, enumerate one coherent lattice patch around its
	// center covering the half-box minimum-image cube: every point of the
	// grain's periodic Voronoi cell has a unique representative there, so
	// the crystal is continuous across box faces (no spurious face seams)
	// and each cell is filled exactly once.
	span := int(math.Ceil(l*math.Sqrt(3)/(2*a))) + 2
	for g := 0; g < ngrains; g++ {
		rot := rots[g]
		c := centers[g]
		for ix := -span; ix <= span; ix++ {
			for iy := -span; iy <= span; iy++ {
				for iz := -span; iz <= span; iz++ {
					for _, b := range basis {
						lp := [3]float64{
							(float64(ix)+b[0])*a + shifts[g][0],
							(float64(iy)+b[1])*a + shifts[g][1],
							(float64(iz)+b[2])*a + shifts[g][2],
						}
						d := matVec(rot, lp)
						// Representative image: within the half-box cube
						// around the grain center.
						if d[0] <= -l/2 || d[0] > l/2 || d[1] <= -l/2 || d[1] > l/2 || d[2] <= -l/2 || d[2] > l/2 {
							continue
						}
						p := [3]float64{c[0] + d[0], c[1] + d[1], c[2] + d[2]}
						for k := 0; k < 3; k++ {
							p[k] -= l * math.Floor(p[k]/l)
						}
						if ownerOf(p) != g {
							continue
						}
						s.Pos = append(s.Pos, p[0], p[1], p[2])
						s.Types = append(s.Types, 0)
					}
				}
			}
		}
	}
	removeClose(s, minSep)
	return s
}

// removeClose deletes later atoms that sit within minSep of an earlier
// atom (periodic), cleaning up grain-boundary overlaps.
func removeClose(s *System, minSep float64) {
	if minSep <= 0 || s.N() < 2 {
		return
	}
	// Spatial hash with cell size minSep.
	var nc [3]int
	var cw [3]float64
	for k := 0; k < 3; k++ {
		nc[k] = max(1, int(s.Box.L[k]/minSep))
		cw[k] = s.Box.L[k] / float64(nc[k])
	}
	cellID := func(p []float64) (int, [3]int) {
		var c [3]int
		for k := 0; k < 3; k++ {
			ci := int(p[k] / cw[k])
			if ci >= nc[k] {
				ci = nc[k] - 1
			}
			if ci < 0 {
				ci = 0
			}
			c[k] = ci
		}
		return (c[0]*nc[1]+c[1])*nc[2] + c[2], c
	}
	cells := make(map[int][]int)
	keep := make([]bool, s.N())
	min2 := minSep * minSep
	for i := 0; i < s.N(); i++ {
		p := s.Pos[3*i : 3*i+3]
		_, c := cellID(p)
		ok := true
	scan:
		for dx := -1; dx <= 1; dx++ {
			for dy := -1; dy <= 1; dy++ {
				for dz := -1; dz <= 1; dz++ {
					cx := ((c[0]+dx)%nc[0] + nc[0]) % nc[0]
					cy := ((c[1]+dy)%nc[1] + nc[1]) % nc[1]
					cz := ((c[2]+dz)%nc[2] + nc[2]) % nc[2]
					id := (cx*nc[1]+cy)*nc[2] + cz
					for _, j := range cells[id] {
						d := [3]float64{
							s.Pos[3*j] - p[0],
							s.Pos[3*j+1] - p[1],
							s.Pos[3*j+2] - p[2],
						}
						s.Box.MinImage(&d)
						if d[0]*d[0]+d[1]*d[1]+d[2]*d[2] < min2 {
							ok = false
							break scan
						}
					}
				}
			}
		}
		if ok {
			keep[i] = true
			id, _ := cellID(p)
			cells[id] = append(cells[id], i)
		}
	}
	// Compact.
	var pos []float64
	var types []int
	for i, k := range keep {
		if k {
			pos = append(pos, s.Pos[3*i:3*i+3]...)
			types = append(types, s.Types[i])
		}
	}
	s.Pos, s.Types = pos, types
}
