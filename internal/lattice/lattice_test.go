package lattice

import (
	"math"
	"math/rand"
	"testing"

	"deepmd-go/internal/neighbor"
)

func TestFCCGeometry(t *testing.T) {
	a := CuLatticeConst
	s := FCC(3, 3, 3, a)
	if s.N() != 4*27 {
		t.Fatalf("atom count = %d, want 108", s.N())
	}
	// Nearest neighbor distance must be a/sqrt(2) with 12 neighbors.
	spec := neighbor.Spec{Rcut: a/math.Sqrt2 + 0.1, Sel: []int{16}}
	list, err := neighbor.Build(spec, s.Pos, s.Types, s.N(), &s.Box, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := a / math.Sqrt2
	for i, nbrs := range list.Entries {
		if len(nbrs) != 12 {
			t.Fatalf("atom %d has %d nearest neighbors, want 12", i, len(nbrs))
		}
		for _, e := range nbrs {
			if math.Abs(e.Dist-want) > 1e-9 {
				t.Fatalf("nn distance %g, want %g", e.Dist, want)
			}
		}
	}
}

func TestWaterGeometry(t *testing.T) {
	s := Water(3, 3, 3, WaterSpacing, 42)
	if s.N() != 81 {
		t.Fatalf("atom count = %d, want 81", s.N())
	}
	nmol := 27
	for k := 0; k < nmol; k++ {
		if s.Types[3*k] != 0 || s.Types[3*k+1] != 1 || s.Types[3*k+2] != 1 {
			t.Fatalf("molecule %d types wrong", k)
		}
		o := s.Pos[9*k : 9*k+3]
		h1 := s.Pos[9*k+3 : 9*k+6]
		h2 := s.Pos[9*k+6 : 9*k+9]
		d1 := dist(o, h1)
		d2 := dist(o, h2)
		if math.Abs(d1-0.9572) > 1e-9 || math.Abs(d2-0.9572) > 1e-9 {
			t.Fatalf("molecule %d OH lengths %g %g", k, d1, d2)
		}
		// Angle
		var dot float64
		for a := 0; a < 3; a++ {
			dot += (h1[a] - o[a]) * (h2[a] - o[a])
		}
		theta := math.Acos(dot/(d1*d2)) * 180 / math.Pi
		if math.Abs(theta-104.52) > 1e-6 {
			t.Fatalf("molecule %d angle %g", k, theta)
		}
	}
	// Determinism.
	s2 := Water(3, 3, 3, WaterSpacing, 42)
	for i := range s.Pos {
		if s.Pos[i] != s2.Pos[i] {
			t.Fatal("water build not deterministic")
		}
	}
	// Different seed differs.
	s3 := Water(3, 3, 3, WaterSpacing, 43)
	same := true
	for i := range s.Pos {
		if s.Pos[i] != s3.Pos[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical orientations")
	}
}

func TestWaterDensity(t *testing.T) {
	s := Water(4, 4, 4, WaterSpacing, 1)
	// mass of 64 molecules in g
	const amuToG = 1.66053906660e-24
	mass := 64 * (15.9994 + 2*1.00794) * amuToG
	volCM3 := s.Box.Volume() * 1e-24
	rho := mass / volCM3
	if rho < 0.95 || rho > 1.05 {
		t.Fatalf("water density %.3f g/cm^3, want ~1", rho)
	}
}

func TestNanocrystal(t *testing.T) {
	a := CuLatticeConst
	s := Nanocrystal(25, 4, a, 2.0, 7)
	if s.N() < 500 {
		t.Fatalf("nanocrystal too sparse: %d atoms", s.N())
	}
	// Density sanity: within 30% of perfect FCC atom density.
	perfect := 4 / (a * a * a) * s.Box.Volume()
	if float64(s.N()) < 0.7*perfect || float64(s.N()) > 1.05*perfect {
		t.Fatalf("nanocrystal atom count %d vs perfect %.0f", s.N(), perfect)
	}
	// Minimum separation must be respected.
	spec := neighbor.Spec{Rcut: 2.0, Sel: []int{32}}
	list, err := neighbor.Build(spec, s.Pos, s.Types, s.N(), &s.Box, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i, nbrs := range list.Entries {
		for _, e := range nbrs {
			if e.Dist < 2.0-1e-9 {
				t.Fatalf("atoms %d-%d closer than minSep: %g", i, e.Index, e.Dist)
			}
		}
	}
	// All atoms inside the box.
	for i := 0; i < s.N(); i++ {
		for k := 0; k < 3; k++ {
			v := s.Pos[3*i+k]
			if v < 0 || v >= s.Box.L[k] {
				t.Fatalf("atom %d outside box: %v", i, v)
			}
		}
	}
}

func TestPerturbBounded(t *testing.T) {
	s := FCC(2, 2, 2, 4.0)
	orig := append([]float64(nil), s.Pos...)
	Perturb(s, 0.1, 3)
	moved := false
	for i := range s.Pos {
		d := math.Abs(s.Pos[i] - orig[i])
		if d > 0.1+1e-12 {
			t.Fatalf("perturbation %g exceeds amplitude", d)
		}
		if d > 0 {
			moved = true
		}
	}
	if !moved {
		t.Fatal("perturb did nothing")
	}
}

func TestRandomRotationIsOrthogonal(t *testing.T) {
	rng := newTestRand()
	for trial := 0; trial < 20; trial++ {
		m := randomRotation(rng)
		// m * m^T == I
		for i := 0; i < 3; i++ {
			for j := 0; j < 3; j++ {
				var s float64
				for k := 0; k < 3; k++ {
					s += m[i][k] * m[j][k]
				}
				want := 0.0
				if i == j {
					want = 1
				}
				if math.Abs(s-want) > 1e-12 {
					t.Fatalf("rotation not orthogonal at (%d,%d): %g", i, j, s)
				}
			}
		}
		// Determinant +1 (proper rotation).
		det := m[0][0]*(m[1][1]*m[2][2]-m[1][2]*m[2][1]) -
			m[0][1]*(m[1][0]*m[2][2]-m[1][2]*m[2][0]) +
			m[0][2]*(m[1][0]*m[2][1]-m[1][1]*m[2][0])
		if math.Abs(det-1) > 1e-12 {
			t.Fatalf("determinant %g, want 1", det)
		}
	}
}

func dist(a, b []float64) float64 {
	var s float64
	for k := 0; k < 3; k++ {
		s += (a[k] - b[k]) * (a[k] - b[k])
	}
	return math.Sqrt(s)
}

func newTestRand() *rand.Rand { return rand.New(rand.NewSource(99)) }
