package domain

import (
	"bytes"
	"fmt"
	"math"
	"time"

	"deepmd-go/internal/core"
	"deepmd-go/internal/md"
	"deepmd-go/internal/mpi"
)

// SetupResult measures the Sec. 7.3 setup-time experiment: the baseline
// DeePMD-kit built the atomic structure on a single rank and distributed
// it, and every rank read the model file from storage (>240 s at 4560
// nodes); the optimized code builds atoms locally on every rank without
// communication and stages the model with a single read plus broadcast
// (<5 s).
type SetupResult struct {
	Ranks int

	// BaselineAtoms: rank 0 builds, serializes and distributes.
	BaselineAtoms time.Duration
	// OptimizedAtoms: every rank builds its own copy locally.
	OptimizedAtoms time.Duration
	// BaselineModel: every rank loads the model file independently.
	BaselineModel time.Duration
	// OptimizedModel: rank 0 loads once, broadcasts the bytes.
	OptimizedModel time.Duration
}

// Speedup returns the total setup speedup of the optimized strategy.
func (r *SetupResult) Speedup() float64 {
	base := r.BaselineAtoms + r.BaselineModel
	opt := r.OptimizedAtoms + r.OptimizedModel
	if opt == 0 {
		return 0
	}
	return float64(base) / float64(opt)
}

const (
	tagSetupAtoms = 700
	tagSetupModel = 701
)

// MeasureSetup runs both strategies on a simulated world and times them.
// builder must be deterministic (same output on every rank).
func MeasureSetup(builder func() *md.System, modelPath string, ranks int) (*SetupResult, error) {
	world := mpi.NewWorld(ranks)
	res := &SetupResult{Ranks: ranks}
	var firstErr error

	world.Run(func(c *mpi.Comm) {
		fail := func(err error) {
			if c.Rank() == 0 && firstErr == nil {
				firstErr = err
			}
		}

		// Strategy 1 (baseline): rank 0 builds and distributes the whole
		// structure; other ranks wait for their copy.
		c.Barrier()
		t0 := time.Now()
		if c.Rank() == 0 {
			sys := builder()
			payload := encodeSystem(sys)
			for dst := 1; dst < c.Size(); dst++ {
				c.Send(dst, tagSetupAtoms, payload)
			}
		} else {
			raw := c.Recv(0, tagSetupAtoms).([]byte)
			if _, err := decodeSystem(raw); err != nil {
				fail(err)
			}
		}
		c.Barrier()
		if c.Rank() == 0 {
			res.BaselineAtoms = time.Since(t0)
		}

		// Strategy 2 (optimized): every rank builds locally, no
		// communication (Sec. 7.3: "we build the atomic structure with
		// all the MPI tasks without communication").
		c.Barrier()
		t1 := time.Now()
		_ = builder()
		c.Barrier()
		if c.Rank() == 0 {
			res.OptimizedAtoms = time.Since(t1)
		}

		// Strategy 3 (baseline): every rank reads the model file.
		c.Barrier()
		t2 := time.Now()
		if _, err := core.LoadFile(modelPath); err != nil {
			fail(err)
		}
		c.Barrier()
		if c.Rank() == 0 {
			res.BaselineModel = time.Since(t2)
		}

		// Strategy 4 (optimized): rank 0 reads once and broadcasts; other
		// ranks decode from memory.
		c.Barrier()
		t3 := time.Now()
		var blob []byte
		if c.Rank() == 0 {
			m, err := core.LoadFile(modelPath)
			if err != nil {
				fail(err)
				blob = []byte{}
			} else {
				var buf bytes.Buffer
				if err := m.Save(&buf); err != nil {
					fail(err)
				}
				blob = buf.Bytes()
			}
		}
		blob = c.Bcast(0, tagSetupModel, blob).([]byte)
		if c.Rank() != 0 && len(blob) > 0 {
			if _, err := core.Load(bytes.NewReader(blob)); err != nil {
				fail(err)
			}
		}
		c.Barrier()
		if c.Rank() == 0 {
			res.OptimizedModel = time.Since(t3)
		}
	})
	if firstErr != nil {
		return nil, fmt.Errorf("domain: setup measurement: %w", firstErr)
	}
	return res, nil
}

// encodeSystem flattens a system into one byte payload (cheap manual
// framing; this is measurement plumbing, not archival format).
func encodeSystem(sys *md.System) []byte {
	var buf bytes.Buffer
	n := sys.N()
	writeInt := func(v int) {
		var b [8]byte
		for i := 0; i < 8; i++ {
			b[i] = byte(v >> (8 * i))
		}
		buf.Write(b[:])
	}
	writeFloats := func(fs []float64) {
		for _, f := range fs {
			writeInt(int(math.Float64bits(f)))
		}
	}
	writeInt(n)
	writeFloats(sys.Pos)
	writeFloats(sys.Box.L[:])
	for _, t := range sys.Types {
		writeInt(t)
	}
	return buf.Bytes()
}

func decodeSystem(raw []byte) (*md.System, error) {
	if len(raw) < 8 {
		return nil, fmt.Errorf("domain: truncated system payload")
	}
	readInt := func(off int) int {
		v := 0
		for i := 0; i < 8; i++ {
			v |= int(raw[off+i]) << (8 * i)
		}
		return v
	}
	n := readInt(0)
	want := 8 + 8*(3*n) + 8*3 + 8*n
	if len(raw) != want {
		return nil, fmt.Errorf("domain: system payload %d bytes, want %d", len(raw), want)
	}
	sys := &md.System{
		Pos:   make([]float64, 3*n),
		Types: make([]int, n),
	}
	off := 8
	for i := range sys.Pos {
		sys.Pos[i] = math.Float64frombits(uint64(readInt(off)))
		off += 8
	}
	for k := 0; k < 3; k++ {
		sys.Box.L[k] = math.Float64frombits(uint64(readInt(off)))
		off += 8
	}
	for i := range sys.Types {
		sys.Types[i] = readInt(off)
		off += 8
	}
	return sys, nil
}
