package domain

import (
	"math"
	"math/rand"
	"testing"

	"deepmd-go/internal/core"
	"deepmd-go/internal/lattice"
	"deepmd-go/internal/md"
	"deepmd-go/internal/neighbor"
	"deepmd-go/internal/refpot"
)

func TestBestGrid(t *testing.T) {
	cases := []struct {
		p    int
		l    [3]float64
		want [3]int
	}{
		{1, [3]float64{10, 10, 10}, [3]int{1, 1, 1}},
		{8, [3]float64{10, 10, 10}, [3]int{2, 2, 2}},
		{4, [3]float64{40, 10, 10}, [3]int{4, 1, 1}},
		{6, [3]float64{30, 20, 10}, [3]int{3, 2, 1}},
	}
	for _, c := range cases {
		got := BestGrid(c.p, c.l)
		if got != c.want {
			t.Fatalf("BestGrid(%d, %v) = %v, want %v", c.p, c.l, got, c.want)
		}
		if got[0]*got[1]*got[2] != c.p {
			t.Fatalf("grid does not multiply to p")
		}
	}
}

func TestCoordRankRoundtrip(t *testing.T) {
	grid := [3]int{3, 2, 4}
	for r := 0; r < 24; r++ {
		if got := rankOf(coordOf(r, grid), grid); got != r {
			t.Fatalf("roundtrip %d -> %d", r, got)
		}
	}
	// Periodic wrap.
	if rankOf([3]int{-1, 0, 0}, grid) != rankOf([3]int{2, 0, 0}, grid) {
		t.Fatal("negative wrap broken")
	}
}

func TestValidateGridRejects(t *testing.T) {
	if err := validateGrid([3]int{8, 1, 1}, [3]float64{10, 10, 10}, 2.8); err == nil {
		t.Fatal("sub-box smaller than cutoff accepted")
	}
	if err := validateGrid([3]int{1, 1, 1}, [3]float64{4, 10, 10}, 2.8); err == nil {
		t.Fatal("box below 2*cut accepted")
	}
	if err := validateGrid([3]int{2, 2, 2}, [3]float64{12, 12, 12}, 2.8); err != nil {
		t.Fatalf("valid grid rejected: %v", err)
	}
}

// ljFullSystem builds a randomized LJ crystal.
func ljFullSystem(seed int64) (*md.System, func() md.Potential, neighbor.Spec) {
	cell := lattice.FCC(3, 3, 3, 4.0) // 12 A box
	lattice.Perturb(cell, 0.08, seed)
	sys := &md.System{
		Pos:        cell.Pos,
		Types:      cell.Types,
		MassByType: []float64{39.948},
		Box:        cell.Box,
		Vel:        make([]float64, 3*cell.N()),
	}
	newPot := func() md.Potential { return refpot.NewLennardJones(0.0103, 2.5, 2.5) }
	return sys, newPot, neighbor.Spec{Rcut: 2.5, Skin: 0.3, Sel: []int{64}}
}

// serialForces computes reference forces with the serial path (PBC box).
func serialForces(t *testing.T, sys *md.System, pot md.Potential, spec neighbor.Spec) []float64 {
	t.Helper()
	list, err := neighbor.Build(spec, sys.Pos, sys.Types, sys.N(), &sys.Box, 1)
	if err != nil {
		t.Fatal(err)
	}
	var res core.Result
	if err := pot.Compute(sys.Pos, sys.Types, sys.N(), list, &sys.Box, &res); err != nil {
		t.Fatal(err)
	}
	return append([]float64(nil), res.Force[:3*sys.N()]...)
}

// The decisive domain test: forces computed with ghosts + reverse
// communication must equal the serial minimum-image forces for every
// decomposition.
func TestParallelForcesMatchSerialLJ(t *testing.T) {
	for _, ranks := range []int{1, 2, 4, 8} {
		sys, newPot, spec := ljFullSystem(3)
		want := serialForces(t, sys, newPot(), spec)

		stats, err := Run(sys, newPot, Options{
			Ranks: ranks, Dt: 0.001, Steps: 0, Spec: spec, GatherForces: true,
		})
		if err != nil {
			t.Fatalf("ranks=%d: %v", ranks, err)
		}
		if len(stats.ForceByGID) != sys.N() {
			t.Fatalf("ranks=%d: gathered %d atoms, want %d", ranks, len(stats.ForceByGID), sys.N())
		}
		for gid, f := range stats.ForceByGID {
			for a := 0; a < 3; a++ {
				if d := math.Abs(f[a] - want[3*gid+int64(a)]); d > 1e-10 {
					t.Fatalf("ranks=%d atom %d comp %d: parallel %g serial %g", ranks, gid, a, f[a], want[3*gid+int64(a)])
				}
			}
		}
	}
}

// Same check through the full Deep Potential pipeline: ghost forces from
// the DP force decomposition must be reverse-communicated correctly.
func TestParallelForcesMatchSerialDP(t *testing.T) {
	cfg := core.TinyConfig(2)
	model, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	n := 48
	box := neighbor.Box{L: [3]float64{12, 12, 12}}
	sys := &md.System{
		Pos:        make([]float64, 3*n),
		Vel:        make([]float64, 3*n),
		Types:      make([]int, n),
		MassByType: cfg.Masses,
		Box:        box,
	}
	for i := 0; i < n; i++ {
		for k := 0; k < 3; k++ {
			sys.Pos[3*i+k] = rng.Float64() * 12
		}
		sys.Types[i] = rng.Intn(2)
	}
	spec := neighbor.Spec{Rcut: cfg.Rcut, Skin: cfg.Skin, Sel: cfg.Sel}
	want := serialForces(t, sys, core.NewEvaluator[float64](model), spec)

	for _, ranks := range []int{2, 4} {
		grid := [3]int{2, ranks / 2, 1} // keep sub-extents above the 5 A ghost width
		stats, err := Run(sys, func() md.Potential { return core.NewEvaluator[float64](model) }, Options{
			Ranks: ranks, Grid: grid, Dt: 0.0005, Steps: 0, Spec: spec, GatherForces: true,
		})
		if err != nil {
			t.Fatalf("ranks=%d: %v", ranks, err)
		}
		var maxd float64
		for gid, f := range stats.ForceByGID {
			for a := 0; a < 3; a++ {
				if d := math.Abs(f[a] - want[3*gid+int64(a)]); d > maxd {
					maxd = d
				}
			}
		}
		if maxd > 1e-9 {
			t.Fatalf("ranks=%d: max force deviation %g", ranks, maxd)
		}
	}
}

// A multi-step parallel run must track the serial trajectory's energies
// (thermo reductions, migration, ghost refresh all exercised).
func TestParallelTrajectoryMatchesSerial(t *testing.T) {
	sysP, newPot, spec := ljFullSystem(5)
	sysP.InitVelocities(40, 7)
	sysS := &md.System{
		Pos:        append([]float64(nil), sysP.Pos...),
		Vel:        append([]float64(nil), sysP.Vel...),
		Types:      sysP.Types,
		MassByType: sysP.MassByType,
		Box:        sysP.Box,
	}

	stats, err := Run(sysP, newPot, Options{
		Ranks: 4, Grid: [3]int{2, 2, 1}, Dt: 0.002, Steps: 60, Spec: spec,
		RebuildEvery: 10, ThermoEvery: 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	sim, err := md.NewSim(sysS, newPot(), md.Options{
		Dt: 0.002, Spec: spec, RebuildEvery: 10, ThermoEvery: 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(60); err != nil {
		t.Fatal(err)
	}
	if len(stats.Thermo) != len(sim.Log) {
		t.Fatalf("thermo samples: parallel %d serial %d", len(stats.Thermo), len(sim.Log))
	}
	for i := range sim.Log {
		dp := math.Abs(stats.Thermo[i].Potential - sim.Log[i].Potential)
		dk := math.Abs(stats.Thermo[i].Kinetic - sim.Log[i].Kinetic)
		scale := math.Abs(sim.Log[i].Potential) + 1
		if dp > 1e-8*scale || dk > 1e-8*scale {
			t.Fatalf("sample %d: dPE=%g dKE=%g", i, dp, dk)
		}
	}
	// Atom conservation across migrations.
	total := 0
	for _, n := range stats.AtomsPerRank {
		total += n
	}
	if total != sysS.N() {
		t.Fatalf("atoms after migration = %d, want %d", total, sysS.N())
	}
	// Every rank must have ghosts in a periodic system.
	for r, g := range stats.GhostsPerRank {
		if g <= 0 {
			t.Fatalf("rank %d has no ghosts", r)
		}
	}
}

// Iallreduce must produce the same thermo log as blocking Allreduce.
func TestIallreduceMatchesAllreduce(t *testing.T) {
	run := func(useI bool) []md.Thermo {
		sys, newPot, spec := ljFullSystem(9)
		sys.InitVelocities(30, 11)
		stats, err := Run(sys, newPot, Options{
			Ranks: 4, Grid: [3]int{2, 2, 1}, Dt: 0.002, Steps: 40, Spec: spec,
			RebuildEvery: 10, ThermoEvery: 10, UseIallreduce: useI,
		})
		if err != nil {
			t.Fatal(err)
		}
		return stats.Thermo
	}
	a := run(false)
	b := run(true)
	if len(a) != len(b) {
		t.Fatalf("sample counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Step != b[i].Step || math.Abs(a[i].Potential-b[i].Potential) > 1e-12 {
			t.Fatalf("sample %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestRunRejectsTooManyRanks(t *testing.T) {
	sys, newPot, spec := ljFullSystem(13)
	if _, err := Run(sys, newPot, Options{Ranks: 512, Dt: 0.001, Steps: 1, Spec: spec}); err == nil {
		t.Fatal("expected sub-box validation error")
	}
}

func TestRunSurfacesRankErrors(t *testing.T) {
	sys, _, spec := ljFullSystem(15)
	bad := func() md.Potential {
		return refpot.NewSuttonChenCu() // rejects ghost-mode configurations
	}
	if _, err := Run(sys, bad, Options{Ranks: 2, Dt: 0.001, Steps: 1, Spec: spec}); err == nil {
		t.Fatal("expected surfaced rank error")
	}
}

// Sec. 7.3: replicated local setup + broadcast model staging must beat the
// rank-0-distributes + every-rank-reads baseline.
func TestSetupOptimizationShape(t *testing.T) {
	cfg := core.TinyConfig(1)
	model, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := dir + "/model.dp"
	if err := model.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	builder := func() *md.System {
		cell := lattice.FCC(6, 6, 6, 4.0)
		return &md.System{Pos: cell.Pos, Types: cell.Types, MassByType: []float64{60}, Box: cell.Box}
	}
	res, err := MeasureSetup(builder, path, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.BaselineAtoms <= 0 || res.OptimizedAtoms <= 0 || res.BaselineModel <= 0 || res.OptimizedModel <= 0 {
		t.Fatalf("non-positive timings: %+v", res)
	}
	if res.Speedup() <= 0 {
		t.Fatalf("speedup %g", res.Speedup())
	}
}

func TestSystemPayloadRoundtrip(t *testing.T) {
	cell := lattice.FCC(2, 2, 2, 3.7)
	sys := &md.System{Pos: cell.Pos, Types: cell.Types, Box: cell.Box}
	got, err := decodeSystem(encodeSystem(sys))
	if err != nil {
		t.Fatal(err)
	}
	if got.N() != sys.N() || got.Box.L != sys.Box.L {
		t.Fatal("metadata mismatch")
	}
	for i := range sys.Pos {
		if got.Pos[i] != sys.Pos[i] {
			t.Fatalf("pos[%d] mismatch", i)
		}
	}
	if _, err := decodeSystem([]byte{1, 2}); err == nil {
		t.Fatal("truncated payload accepted")
	}
}
