// Package domain implements the paper's parallelization layer (Fig. 1(a),
// Sec. 5.4): a 3-D spatial decomposition of the periodic box across ranks,
// LAMMPS-style staged ghost exchange (x, then y, then z so corners arrive
// transitively), per-step forward position refresh of recorded ghosts,
// reverse communication of ghost forces (the DP force decomposition makes
// every rank compute partial forces on its ghosts), atom migration at
// neighbor-list rebuilds, and global thermodynamic reductions with either
// blocking Allreduce or the paper's Iallreduce optimization.
package domain

import (
	"fmt"
	"math"
)

// BestGrid factorizes p ranks into a 3-D process grid that minimizes the
// total communication surface for a box with edge lengths l.
func BestGrid(p int, l [3]float64) [3]int {
	best := [3]int{p, 1, 1}
	bestSurf := math.Inf(1)
	for px := 1; px <= p; px++ {
		if p%px != 0 {
			continue
		}
		for py := 1; py <= p/px; py++ {
			if (p/px)%py != 0 {
				continue
			}
			pz := p / px / py
			sx := l[0] / float64(px)
			sy := l[1] / float64(py)
			sz := l[2] / float64(pz)
			surf := sx*sy + sy*sz + sz*sx
			if surf < bestSurf {
				bestSurf = surf
				best = [3]int{px, py, pz}
			}
		}
	}
	return best
}

// coordOf maps a rank id to its grid coordinate (x-major).
func coordOf(rank int, grid [3]int) [3]int {
	return [3]int{
		rank / (grid[1] * grid[2]),
		(rank / grid[2]) % grid[1],
		rank % grid[2],
	}
}

// rankOf maps a grid coordinate (wrapped periodically) to a rank id.
func rankOf(c [3]int, grid [3]int) int {
	x := ((c[0] % grid[0]) + grid[0]) % grid[0]
	y := ((c[1] % grid[1]) + grid[1]) % grid[1]
	z := ((c[2] % grid[2]) + grid[2]) % grid[2]
	return (x*grid[1]+y)*grid[2] + z
}

// subBox returns the owned region [lo, hi) of a coordinate.
func subBox(c [3]int, grid [3]int, l [3]float64) (lo, hi [3]float64) {
	for k := 0; k < 3; k++ {
		w := l[k] / float64(grid[k])
		lo[k] = float64(c[k]) * w
		hi[k] = lo[k] + w
		if c[k] == grid[k]-1 {
			hi[k] = l[k] // absorb rounding at the top edge
		}
	}
	return lo, hi
}

// ownerOf returns the rank owning position p (assumed wrapped into the
// box).
func ownerOf(p [3]float64, grid [3]int, l [3]float64) int {
	var c [3]int
	for k := 0; k < 3; k++ {
		w := l[k] / float64(grid[k])
		ci := int(p[k] / w)
		if ci >= grid[k] {
			ci = grid[k] - 1
		}
		if ci < 0 {
			ci = 0
		}
		c[k] = ci
	}
	return rankOf(c, grid)
}

// validateGrid checks the decomposition supports single-hop ghost exchange
// with the given cutoff: every sub-domain extent must cover the ghost
// width, and the global box must satisfy the minimum-image requirement.
func validateGrid(grid [3]int, l [3]float64, cut float64) error {
	for k := 0; k < 3; k++ {
		if grid[k] < 1 {
			return fmt.Errorf("domain: grid[%d] = %d", k, grid[k])
		}
		if l[k]/float64(grid[k]) < cut {
			return fmt.Errorf("domain: sub-box extent %.3f along %d smaller than ghost width %.3f; use fewer ranks",
				l[k]/float64(grid[k]), k, cut)
		}
		if l[k] < 2*cut {
			return fmt.Errorf("domain: box edge %d (%.3f) < 2*ghost width (%.3f)", k, l[k], 2*cut)
		}
	}
	return nil
}
