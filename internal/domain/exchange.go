package domain

import (
	"time"

	"deepmd-go/internal/mpi"
	"deepmd-go/internal/neighbor"
)

// Message tags for the exchange protocols.
const (
	tagMigrate = 100
	tagBorder  = 200 // +stage offset
	tagForward = 300 // +stage offset
	tagReverse = 400 // +stage offset
	tagThermo  = 500
	tagGather  = 600 // +0 gid, +1 force, +2 pos
	tagStats   = 700
)

// rankState is one rank's atom storage: locals in [0, nloc), ghosts in
// [nloc, len(typ)).
type rankState struct {
	comm  *mpi.Comm
	grid  [3]int
	coord [3]int
	lo    [3]float64
	hi    [3]float64
	gbox  neighbor.Box
	cut   float64 // ghost width: rcut + skin

	pos  []float64
	vel  []float64
	typ  []int
	gid  []int64
	nloc int

	plan []stagePlan

	// Comm/compute overlap accounting for the per-step exchange: commWait
	// is time blocked in Wait, commWindow the whole forward/reverse wall
	// time. 1 - wait/window is the fraction of the exchange window in
	// which packing, copying and accumulation proceeded while messages
	// were in flight (reported per rank by the scaling experiment).
	commWait   time.Duration
	commWindow time.Duration
}

// stagePlan records one direction of one staged border exchange so the
// same ghosts can be refreshed every step and their forces returned.
type stagePlan struct {
	dim, dir          int
	sendTo, recvFrom  int
	sendIdx           []int32
	shift             float64
	recvBase, recvCnt int

	// Reusable per-step send buffers, hoisted here so the steady-state
	// forward/reverse path is allocation-free (they used to be allocated
	// per stage per step). The `any` values are the same slices boxed
	// once at plan-build time — converting a slice to an interface
	// allocates, so the pre-boxed headers are sent instead and the
	// fixed-length slices are refilled in place each step.
	fwdSend []float64
	fwdBox  any
	revSend []float64
	revBox  any
}

// atomBundle is the payload for migration and border sends.
type atomBundle struct {
	Pos []float64
	Vel []float64 // empty for border sends
	Typ []int
	Gid []int64
}

// nall returns locals + ghosts.
func (rs *rankState) nall() int { return len(rs.typ) }

// dropGhosts truncates the arrays to locals only.
func (rs *rankState) dropGhosts() {
	rs.pos = rs.pos[:3*rs.nloc]
	rs.typ = rs.typ[:rs.nloc]
	rs.gid = rs.gid[:rs.nloc]
	rs.plan = rs.plan[:0]
}

// migrate reassigns atoms that left the owned sub-box. Positions must be
// wrapped into the global box beforehand.
func (rs *rankState) migrate() {
	p := rs.comm.Size()
	if p == 1 {
		return
	}
	out := make([]atomBundle, p)
	keepPos := rs.pos[:0]
	keepVel := rs.vel[:0]
	keepTyp := rs.typ[:0]
	keepGid := rs.gid[:0]
	for i := 0; i < rs.nloc; i++ {
		pt := [3]float64{rs.pos[3*i], rs.pos[3*i+1], rs.pos[3*i+2]}
		owner := ownerOf(pt, rs.grid, rs.gbox.L)
		if owner == rs.comm.Rank() {
			keepPos = append(keepPos, rs.pos[3*i:3*i+3]...)
			keepVel = append(keepVel, rs.vel[3*i:3*i+3]...)
			keepTyp = append(keepTyp, rs.typ[i])
			keepGid = append(keepGid, rs.gid[i])
			continue
		}
		b := &out[owner]
		b.Pos = append(b.Pos, rs.pos[3*i:3*i+3]...)
		b.Vel = append(b.Vel, rs.vel[3*i:3*i+3]...)
		b.Typ = append(b.Typ, rs.typ[i])
		b.Gid = append(b.Gid, rs.gid[i])
	}
	rs.pos, rs.vel, rs.typ, rs.gid = keepPos, keepVel, keepTyp, keepGid

	// All-to-all exchange (deterministic order).
	me := rs.comm.Rank()
	for dst := 0; dst < p; dst++ {
		if dst != me {
			rs.comm.Send(dst, tagMigrate, out[dst])
		}
	}
	for src := 0; src < p; src++ {
		if src == me {
			continue
		}
		b := rs.comm.Recv(src, tagMigrate).(atomBundle)
		rs.pos = append(rs.pos, b.Pos...)
		rs.vel = append(rs.vel, b.Vel...)
		rs.typ = append(rs.typ, b.Typ...)
		rs.gid = append(rs.gid, b.Gid...)
	}
	rs.nloc = len(rs.typ)
}

// borders performs the staged x -> y -> z ghost exchange, recording the
// plan for later forward/reverse communication. Ghosts accumulated in
// earlier stages are forwarded too, which is what populates edge and
// corner regions transitively.
func (rs *rankState) borders() {
	rs.dropGhosts()
	for dim := 0; dim < 3; dim++ {
		// Candidates for this dimension: locals plus ghosts from earlier
		// dimensions. Ghosts received within this dimension must not be
		// re-sent (they would bounce back to their owners, or re-enter as
		// spurious duplicates in the self-exchange case).
		nBeforeDim := rs.nall()
		// Phase A: send low-side atoms to the left neighbor, receive the
		// right neighbor's low-side atoms (which sit just above my hi).
		// Phase B: mirror.
		for dir := 0; dir < 2; dir++ {
			var sendTo, recvFrom int
			var shiftSend float64
			cl := rs.coord
			if dir == 0 {
				cl[dim]--
				sendTo = rankOf(cl, rs.grid)
				cr := rs.coord
				cr[dim]++
				recvFrom = rankOf(cr, rs.grid)
				if rs.coord[dim] == 0 {
					shiftSend = rs.gbox.L[dim] // wrap to the high side
				}
			} else {
				cl[dim]++
				sendTo = rankOf(cl, rs.grid)
				cr := rs.coord
				cr[dim]--
				recvFrom = rankOf(cr, rs.grid)
				if rs.coord[dim] == rs.grid[dim]-1 {
					shiftSend = -rs.gbox.L[dim] // wrap to the low side
				}
			}

			// Select atoms within the ghost width of the boundary.
			var idx []int32
			for i := 0; i < nBeforeDim; i++ {
				x := rs.pos[3*i+dim]
				if dir == 0 && x < rs.lo[dim]+rs.cut {
					idx = append(idx, int32(i))
				}
				if dir == 1 && x >= rs.hi[dim]-rs.cut {
					idx = append(idx, int32(i))
				}
			}
			b := atomBundle{
				Pos: make([]float64, 0, 3*len(idx)),
				Typ: make([]int, 0, len(idx)),
				Gid: make([]int64, 0, len(idx)),
			}
			for _, i := range idx {
				x, y, z := rs.pos[3*i], rs.pos[3*i+1], rs.pos[3*i+2]
				switch dim {
				case 0:
					x += shiftSend
				case 1:
					y += shiftSend
				default:
					z += shiftSend
				}
				b.Pos = append(b.Pos, x, y, z)
				b.Typ = append(b.Typ, rs.typ[i])
				b.Gid = append(b.Gid, rs.gid[i])
			}

			tag := tagBorder + 2*dim + dir
			rs.comm.Send(sendTo, tag, b)
			in := rs.comm.Recv(recvFrom, tag).(atomBundle)

			base := rs.nall()
			rs.pos = append(rs.pos, in.Pos...)
			rs.typ = append(rs.typ, in.Typ...)
			rs.gid = append(rs.gid, in.Gid...)
			fwd := make([]float64, 3*len(idx))
			rev := make([]float64, 3*len(in.Typ))
			rs.plan = append(rs.plan, stagePlan{
				dim: dim, dir: dir,
				sendTo: sendTo, recvFrom: recvFrom,
				sendIdx: idx, shift: shiftSend,
				recvBase: base, recvCnt: len(in.Typ),
				fwdSend: fwd, fwdBox: any(fwd),
				revSend: rev, revBox: any(rev),
			})
		}
	}
}

// packForward fills the stage's reusable send buffer with the current
// (shifted) positions of the atoms it exports. It runs twice per stage per
// step on the ghost-exchange hot path and must stay off the heap.
//
//dp:noalloc
func (rs *rankState) packForward(sp *stagePlan) {
	for k, i := range sp.sendIdx {
		x, y, z := rs.pos[3*i], rs.pos[3*i+1], rs.pos[3*i+2]
		switch sp.dim {
		case 0:
			x += sp.shift
		case 1:
			y += sp.shift
		default:
			z += sp.shift
		}
		sp.fwdSend[3*k], sp.fwdSend[3*k+1], sp.fwdSend[3*k+2] = x, y, z
	}
}

// forward refreshes ghost positions along the recorded plan (the per-step
// ghost-region communication of Sec. 5.4). The two directions of each
// dimension are independent, so both receives are posted and both sends
// packed before either Wait: the second direction's packing (and, on the
// wire transport, the frame encoding and socket IO) overlaps the first
// message's flight. Dimensions stay sequential — a later dimension
// forwards ghosts received in earlier ones. Waits complete in fixed stage
// order so the result is bit-identical to the synchronous exchange.
//
// The packing/copy side is allocation-free (packForward is //dp:noalloc
// and the receives land in place); the transport's per-message envelopes
// are the comm layer's business, so forward itself carries no mark.
func (rs *rankState) forward() {
	start := time.Now()
	for si := 0; si+1 < len(rs.plan); si += 2 {
		a, b := &rs.plan[si], &rs.plan[si+1]
		ra := rs.comm.Irecv(a.recvFrom, tagForward+si)
		rb := rs.comm.Irecv(b.recvFrom, tagForward+si+1)
		rs.packForward(a)
		rs.comm.Isend(a.sendTo, tagForward+si, a.fwdBox)
		rs.packForward(b)
		rs.comm.Isend(b.sendTo, tagForward+si+1, b.fwdBox)
		t := time.Now()
		in := ra.Wait().([]float64)
		rs.commWait += time.Since(t)
		copy(rs.pos[3*a.recvBase:3*(a.recvBase+a.recvCnt)], in)
		t = time.Now()
		in = rb.Wait().([]float64)
		rs.commWait += time.Since(t)
		copy(rs.pos[3*b.recvBase:3*(b.recvBase+b.recvCnt)], in)
	}
	rs.commWindow += time.Since(start)
}

// reverse returns ghost forces to their owners along the plan in reverse
// order, accumulating into the sender's force entries (which may
// themselves be ghosts of an earlier stage, cascading the contribution
// home). Like forward, the two directions of a dimension exchange
// concurrently; accumulation still happens in descending stage order (the
// two directions' ghost-force source regions are disjoint from both
// accumulation targets, so packing both before accumulating either reads
// the same values the synchronous exchange did — bit-identical results).
func (rs *rankState) reverse(force []float64) {
	start := time.Now()
	for si := len(rs.plan) - 1; si >= 1; si -= 2 {
		a, b := &rs.plan[si], &rs.plan[si-1]
		// Reverse direction: I received ghosts from recvFrom, so I return
		// their forces there; my own sent atoms' forces come back from
		// sendTo.
		ra := rs.comm.Irecv(a.sendTo, tagReverse+si)
		rb := rs.comm.Irecv(b.sendTo, tagReverse+si-1)
		copy(a.revSend, force[3*a.recvBase:3*(a.recvBase+a.recvCnt)])
		rs.comm.Isend(a.recvFrom, tagReverse+si, a.revBox)
		copy(b.revSend, force[3*b.recvBase:3*(b.recvBase+b.recvCnt)])
		rs.comm.Isend(b.recvFrom, tagReverse+si-1, b.revBox)
		t := time.Now()
		in := ra.Wait().([]float64)
		rs.commWait += time.Since(t)
		for k, i := range a.sendIdx {
			force[3*i] += in[3*k]
			force[3*i+1] += in[3*k+1]
			force[3*i+2] += in[3*k+2]
		}
		t = time.Now()
		in = rb.Wait().([]float64)
		rs.commWait += time.Since(t)
		for k, i := range b.sendIdx {
			force[3*i] += in[3*k]
			force[3*i+1] += in[3*k+1]
			force[3*i+2] += in[3*k+2]
		}
	}
	rs.commWindow += time.Since(start)
}

// ghostCount returns the current number of ghost atoms.
func (rs *rankState) ghostCount() int { return rs.nall() - rs.nloc }
