package domain

import (
	"fmt"
	"time"

	"deepmd-go/internal/core"
	"deepmd-go/internal/md"
	"deepmd-go/internal/mpi"
	"deepmd-go/internal/neighbor"
	"deepmd-go/internal/units"
)

// Options configures a domain-decomposed MD run.
type Options struct {
	// Ranks is the number of simulated MPI ranks (goroutines).
	Ranks int
	// Grid is the process grid; zero values select BestGrid.
	Grid [3]int
	// Dt is the time step in ps.
	Dt float64
	// Steps is the number of MD steps.
	Steps int
	// Spec is the neighbor requirement (cutoff + skin = ghost width).
	Spec neighbor.Spec
	// RebuildEvery is the migration/border cadence (paper: 50).
	RebuildEvery int
	// ThermoEvery is the reduction cadence (paper: 20).
	ThermoEvery int
	// UseIallreduce switches the thermo reduction to the non-blocking
	// collective (Sec. 5.4); results are then consumed one sample late,
	// mirroring the paper's pipelining.
	UseIallreduce bool
	// GatherForces collects final per-atom forces by global id on rank 0
	// (used by verification tests; costs one gather).
	GatherForces bool
	// Workers is the per-rank goroutine count for neighbor-list
	// construction (on a real machine this is the node's core budget per
	// MPI rank). Zero defaults from the potential's own budget when it
	// reports one (md.WorkerHinter, i.e. a shared core.Engine); <= 1
	// builds serially.
	Workers int
}

// Stats is the result of a parallel run.
type Stats struct {
	// Thermo holds the globally reduced samples (rank 0's view).
	Thermo []md.Thermo
	// AtomsPerRank and GhostsPerRank are measured after the last rebuild
	// (the quantities of Table 4).
	AtomsPerRank  []int
	GhostsPerRank []int
	// ForceByGID and PosByGID are gathered when Options.GatherForces.
	ForceByGID map[int64][3]float64
	PosByGID   map[int64][3]float64
	// Messages and Bytes are the communication totals.
	Messages, Bytes int64
	// LoopTime is the MD loop wall time ("MD loop time" of Sec. 6.3).
	LoopTime time.Duration
}

// RunShared executes a domain-decomposed simulation in which every rank
// shares one goroutine-safe potential — a core.Engine, whose evaluator
// pool serves the ranks' concurrent force calls — instead of building a
// per-rank evaluator. The engine also supplies the per-rank neighbor
// worker budget when opt.Workers is unset, dropping the ad-hoc plumbing
// the per-rank constructors needed.
//
// Budgeting contract: the engine's per-evaluation Workers applies to
// EVERY rank's concurrent force call (and, via the hint, to its
// neighbor builds), so an engine serving R ranks should be opened with
// Workers ≈ machine budget / R and MaxConcurrency >= R — exactly what
// cmd/dpmd does. Opening with the full machine budget and then running
// many ranks oversubscribes the cores R-fold.
func RunShared(sys *md.System, pot md.Potential, opt Options) (*Stats, error) {
	if opt.Workers <= 0 {
		if wh, ok := pot.(md.WorkerHinter); ok {
			opt.Workers = wh.EvalWorkers()
		}
	}
	return Run(sys, func() md.Potential { return pot }, opt)
}

// Run executes a domain-decomposed simulation of the given full system.
// Every rank receives the complete initial system (the replicated-setup
// strategy of Sec. 7.3) and keeps only the atoms it owns. newPot builds a
// per-rank potential evaluator; ranks calling a shared goroutine-safe
// potential instead should use RunShared.
func Run(sys *md.System, newPot func() md.Potential, opt Options) (*Stats, error) {
	if opt.Ranks < 1 {
		opt.Ranks = 1
	}
	if opt.RebuildEvery <= 0 {
		opt.RebuildEvery = 50
	}
	if opt.ThermoEvery <= 0 {
		opt.ThermoEvery = 20
	}
	grid := opt.Grid
	if grid[0] == 0 || grid[1] == 0 || grid[2] == 0 {
		grid = BestGrid(opt.Ranks, sys.Box.L)
	}
	if grid[0]*grid[1]*grid[2] != opt.Ranks {
		return nil, fmt.Errorf("domain: grid %v does not match %d ranks", grid, opt.Ranks)
	}
	cut := opt.Spec.RcutBuild()
	if err := validateGrid(grid, sys.Box.L, cut); err != nil {
		return nil, err
	}

	world := mpi.NewWorld(opt.Ranks)
	stats := &Stats{
		AtomsPerRank:  make([]int, opt.Ranks),
		GhostsPerRank: make([]int, opt.Ranks),
	}
	start := time.Now()

	var runErr error
	func() {
		// A rank error becomes a panic so the world aborts (unblocking
		// the other ranks) and is converted back to an error here.
		defer func() {
			if p := recover(); p != nil {
				runErr = fmt.Errorf("domain: %v", p)
			}
		}()
		world.Run(func(c *mpi.Comm) {
			if err := runRank(c, sys, newPot(), opt, grid, stats); err != nil {
				panic(err)
			}
		})
	}()
	if runErr != nil {
		return nil, runErr
	}
	stats.LoopTime = time.Since(start)
	stats.Messages = world.Messages()
	stats.Bytes = world.Bytes()
	return stats, nil
}

// runRank is the per-rank SPMD body.
func runRank(c *mpi.Comm, full *md.System, pot md.Potential, opt Options, grid [3]int, stats *Stats) error {
	coord := coordOf(c.Rank(), grid)
	lo, hi := subBox(coord, grid, full.Box.L)
	rs := &rankState{
		comm:  c,
		grid:  grid,
		coord: coord,
		lo:    lo,
		hi:    hi,
		gbox:  full.Box,
		cut:   opt.Spec.RcutBuild(),
	}

	// Replicated setup: select owned atoms from the full system.
	for i := 0; i < full.N(); i++ {
		p := [3]float64{full.Pos[3*i], full.Pos[3*i+1], full.Pos[3*i+2]}
		full.Box.Wrap(p[:])
		if ownerOf(p, grid, full.Box.L) != c.Rank() {
			continue
		}
		rs.pos = append(rs.pos, p[0], p[1], p[2])
		rs.vel = append(rs.vel, full.Vel[3*i:3*i+3]...)
		rs.typ = append(rs.typ, full.Types[i])
		rs.gid = append(rs.gid, int64(i))
	}
	rs.nloc = len(rs.typ)

	var list *neighbor.List
	var res core.Result
	var pending *mpi.Request
	var pendingStep int

	rebuild := func() error {
		// Wrap, migrate, exchange borders, rebuild the local list.
		for i := 0; i < rs.nloc; i++ {
			rs.gbox.Wrap(rs.pos[3*i : 3*i+3])
		}
		rs.migrate()
		rs.borders()
		l, err := neighbor.Build(opt.Spec, rs.pos, rs.typ, rs.nloc, nil, opt.Workers)
		if err != nil {
			return err
		}
		list = l
		return nil
	}
	compute := func() error {
		if err := pot.Compute(rs.pos, rs.typ, rs.nloc, list, nil, &res); err != nil {
			return err
		}
		rs.reverse(res.Force)
		return nil
	}

	record := func(step int, g []float64) {
		if c.Rank() != 0 {
			return
		}
		n := g[4]
		vol := rs.gbox.Volume()
		tK := 0.0
		if n > 1 {
			tK = 2 * g[0] / ((3*n - 3) * units.Boltzmann)
		}
		nkt := n * units.Boltzmann * tK
		stats.Thermo = append(stats.Thermo, md.Thermo{
			Step:        step,
			Kinetic:     g[0],
			Potential:   g[1],
			Temperature: tK,
			Pressure:    (nkt + g[2]/3) / vol * units.PressureEVA3ToBar,
			BoxZ:        rs.gbox.L[2],
			StressZZ:    (nkt/3 + g[3]) / vol * units.PressureEVA3ToBar,
		})
	}
	sample := func(step int) {
		// Local contributions: KE, PE, virial trace, W_zz, atom count.
		var ke float64
		for i := 0; i < rs.nloc; i++ {
			m := full.MassByType[rs.typ[i]]
			ke += 0.5 * m * (rs.vel[3*i]*rs.vel[3*i] + rs.vel[3*i+1]*rs.vel[3*i+1] + rs.vel[3*i+2]*rs.vel[3*i+2])
		}
		ke *= units.KineticToEV
		local := []float64{ke, res.Energy, res.Virial[0] + res.Virial[4] + res.Virial[8], res.Virial[8], float64(rs.nloc)}
		if opt.UseIallreduce {
			// Consume the previous pending reduction first (one sample
			// of pipeline latency, as in Sec. 5.4).
			if pending != nil {
				record(pendingStep, pending.Wait())
			}
			pending = c.Iallreduce(local)
			pendingStep = step
		} else {
			record(step, c.Allreduce(tagThermo, local))
		}
	}

	if err := rebuild(); err != nil {
		return err
	}
	if err := compute(); err != nil {
		return err
	}

	for step := 1; step <= opt.Steps; step++ {
		// Half kick + drift on locals.
		for i := 0; i < rs.nloc; i++ {
			im := units.ForceToAccel / full.MassByType[rs.typ[i]]
			for a := 0; a < 3; a++ {
				rs.vel[3*i+a] += 0.5 * opt.Dt * res.Force[3*i+a] * im
				rs.pos[3*i+a] += opt.Dt * rs.vel[3*i+a]
			}
		}
		if step%opt.RebuildEvery == 0 {
			if err := rebuild(); err != nil {
				return err
			}
		} else {
			rs.forward()
		}
		if err := compute(); err != nil {
			return err
		}
		for i := 0; i < rs.nloc; i++ {
			im := units.ForceToAccel / full.MassByType[rs.typ[i]]
			for a := 0; a < 3; a++ {
				rs.vel[3*i+a] += 0.5 * opt.Dt * res.Force[3*i+a] * im
			}
		}
		if step%opt.ThermoEvery == 0 {
			sample(step)
		}
	}
	if pending != nil {
		// Drain the pipelined reduction so the last sample is recorded.
		record(pendingStep, pending.Wait())
	}

	stats.AtomsPerRank[c.Rank()] = rs.nloc
	stats.GhostsPerRank[c.Rank()] = rs.ghostCount()

	if opt.GatherForces {
		type gathered struct {
			Gid   []int64
			Force []float64
			Pos   []float64
		}
		g := gathered{Gid: rs.gid[:rs.nloc]}
		g.Force = append(g.Force, res.Force[:3*rs.nloc]...)
		g.Pos = append(g.Pos, rs.pos[:3*rs.nloc]...)
		if c.Rank() == 0 {
			stats.ForceByGID = make(map[int64][3]float64)
			stats.PosByGID = make(map[int64][3]float64)
			add := func(g gathered) {
				for k, id := range g.Gid {
					stats.ForceByGID[id] = [3]float64{g.Force[3*k], g.Force[3*k+1], g.Force[3*k+2]}
					stats.PosByGID[id] = [3]float64{g.Pos[3*k], g.Pos[3*k+1], g.Pos[3*k+2]}
				}
			}
			add(g)
			for src := 1; src < c.Size(); src++ {
				add(c.Recv(src, tagGather).(gathered))
			}
		} else {
			c.Send(0, tagGather, g)
		}
	}
	return nil
}
