package domain

import (
	"fmt"
	"time"

	"deepmd-go/internal/core"
	"deepmd-go/internal/md"
	"deepmd-go/internal/mpi"
	"deepmd-go/internal/neighbor"
	"deepmd-go/internal/units"
)

// Options configures a domain-decomposed MD run.
type Options struct {
	// Ranks is the number of simulated MPI ranks (goroutines).
	Ranks int
	// Grid is the process grid; zero values select BestGrid.
	Grid [3]int
	// Dt is the time step in ps.
	Dt float64
	// Steps is the number of MD steps.
	Steps int
	// Spec is the neighbor requirement (cutoff + skin = ghost width).
	Spec neighbor.Spec
	// RebuildEvery is the migration/border cadence (paper: 50).
	RebuildEvery int
	// ThermoEvery is the reduction cadence (paper: 20).
	ThermoEvery int
	// UseIallreduce switches the thermo reduction to the non-blocking
	// collective (Sec. 5.4); results are then consumed one sample late,
	// mirroring the paper's pipelining.
	UseIallreduce bool
	// GatherForces collects final per-atom forces by global id on rank 0
	// (used by verification tests; costs one gather).
	GatherForces bool
	// Workers is the per-rank goroutine count for neighbor-list
	// construction (on a real machine this is the node's core budget per
	// MPI rank). Zero defaults from the potential's own budget when it
	// reports one (md.WorkerHinter, i.e. a shared core.Engine); <= 1
	// builds serially.
	Workers int
}

// Stats is the result of a parallel run. Everything is gathered onto
// rank 0 with ordinary messages rather than written through shared
// memory, so the identical SPMD body runs on both transports; on a
// multi-process run only rank 0's Stats is populated.
type Stats struct {
	// Thermo holds the globally reduced samples (rank 0's view).
	Thermo []md.Thermo
	// AtomsPerRank and GhostsPerRank are measured after the last rebuild
	// (the quantities of Table 4).
	AtomsPerRank  []int
	GhostsPerRank []int
	// PEPerRank and KEPerRank are each rank's final local potential
	// energy (last force evaluation) and kinetic energy (after the final
	// half-kick) — the per-rank quantities the cross-transport
	// differential holds bit-identical.
	PEPerRank []float64
	KEPerRank []float64
	// OverlapPerRank is the measured comm/compute overlap fraction of the
	// per-step exchange: 1 - (time blocked in Wait)/(exchange wall time).
	OverlapPerRank []float64
	// ForceByGID and PosByGID are gathered when Options.GatherForces.
	ForceByGID map[int64][3]float64
	PosByGID   map[int64][3]float64
	// Messages and Bytes are the communication totals of the MD loop
	// summed over ranks (codec-exact payload bytes, snapshotted before
	// the stats gather itself). WireBytes adds the per-message framing
	// the TCP transport writes: Bytes + mpi.FrameOverhead×Messages.
	Messages, Bytes int64
	WireBytes       int64
	// LoopTime is the MD loop wall time ("MD loop time" of Sec. 6.3).
	LoopTime time.Duration
}

// applyDefaults fills the cadence defaults in place.
func applyDefaults(opt *Options) {
	if opt.Ranks < 1 {
		opt.Ranks = 1
	}
	if opt.RebuildEvery <= 0 {
		opt.RebuildEvery = 50
	}
	if opt.ThermoEvery <= 0 {
		opt.ThermoEvery = 20
	}
}

// resolveGrid selects and validates the process grid for the options.
func resolveGrid(opt Options, box neighbor.Box) ([3]int, error) {
	grid := opt.Grid
	if grid[0] == 0 || grid[1] == 0 || grid[2] == 0 {
		grid = BestGrid(opt.Ranks, box.L)
	}
	if grid[0]*grid[1]*grid[2] != opt.Ranks {
		return grid, fmt.Errorf("domain: grid %v does not match %d ranks", grid, opt.Ranks)
	}
	if err := validateGrid(grid, box.L, opt.Spec.RcutBuild()); err != nil {
		return grid, err
	}
	return grid, nil
}

// RunShared executes a domain-decomposed simulation in which every rank
// shares one goroutine-safe potential — a core.Engine, whose evaluator
// pool serves the ranks' concurrent force calls — instead of building a
// per-rank evaluator. The engine also supplies the per-rank neighbor
// worker budget when opt.Workers is unset, dropping the ad-hoc plumbing
// the per-rank constructors needed.
//
// Budgeting contract: the engine's per-evaluation Workers applies to
// EVERY rank's concurrent force call (and, via the hint, to its
// neighbor builds), so an engine serving R ranks should be opened with
// Workers ≈ machine budget / R and MaxConcurrency >= R — exactly what
// cmd/dpmd does. Opening with the full machine budget and then running
// many ranks oversubscribes the cores R-fold.
func RunShared(sys *md.System, pot md.Potential, opt Options) (*Stats, error) {
	if opt.Workers <= 0 {
		if wh, ok := pot.(md.WorkerHinter); ok {
			opt.Workers = wh.EvalWorkers()
		}
	}
	return Run(sys, func() md.Potential { return pot }, opt)
}

// Run executes a domain-decomposed simulation of the given full system on
// the in-process transport. Every rank receives the complete initial
// system (the replicated-setup strategy of Sec. 7.3) and keeps only the
// atoms it owns. newPot builds a per-rank potential evaluator; ranks
// calling a shared goroutine-safe potential instead should use RunShared.
func Run(sys *md.System, newPot func() md.Potential, opt Options) (*Stats, error) {
	applyDefaults(&opt)
	grid, err := resolveGrid(opt, sys.Box)
	if err != nil {
		return nil, err
	}

	world := mpi.NewWorld(opt.Ranks)
	stats := &Stats{}
	start := time.Now()

	var runErr error
	func() {
		// A rank error becomes a panic so the world aborts (unblocking
		// the other ranks) and is converted back to an error here.
		defer func() {
			if p := recover(); p != nil {
				runErr = fmt.Errorf("domain: %v", p)
			}
		}()
		world.Run(func(c *mpi.Comm) {
			if err := runRank(c, sys, newPot(), opt, grid, stats); err != nil {
				panic(err)
			}
		})
	}()
	if runErr != nil {
		return nil, runErr
	}
	stats.LoopTime = time.Since(start)
	return stats, nil
}

// RunOn executes the same SPMD body on an externally created
// communicator: one OS process per rank over the TCP transport (the
// cmd/dpmd worker mode), or one rank of a caller-managed in-process
// world. Every rank must call it with the same full system and options.
// The returned Stats is fully populated on rank 0 only — other ranks get
// their LoopTime and nothing else, exactly as a real MPI program would.
func RunOn(c *mpi.Comm, sys *md.System, pot md.Potential, opt Options) (*Stats, error) {
	opt.Ranks = c.Size()
	applyDefaults(&opt)
	if opt.Workers <= 0 {
		if wh, ok := pot.(md.WorkerHinter); ok {
			opt.Workers = wh.EvalWorkers()
		}
	}
	grid, err := resolveGrid(opt, sys.Box)
	if err != nil {
		return nil, err
	}
	stats := &Stats{}
	start := time.Now()
	if err := runRank(c, sys, pot, opt, grid, stats); err != nil {
		return nil, err
	}
	stats.LoopTime = time.Since(start)
	return stats, nil
}

// statVec indices for the per-rank summary gathered onto rank 0.
const (
	svNloc = iota
	svGhosts
	svMsgs
	svBytes
	svWaitNs
	svWindowNs
	svPE
	svKE
	svLen
)

// runRank is the per-rank SPMD body. Only rank 0 writes stats; every
// cross-rank quantity travels as a message, so the body is transport-
// agnostic (goroutine ranks share the stats pointer, process ranks each
// hold their own).
func runRank(c *mpi.Comm, full *md.System, pot md.Potential, opt Options, grid [3]int, stats *Stats) error {
	coord := coordOf(c.Rank(), grid)
	lo, hi := subBox(coord, grid, full.Box.L)
	rs := &rankState{
		comm:  c,
		grid:  grid,
		coord: coord,
		lo:    lo,
		hi:    hi,
		gbox:  full.Box,
		cut:   opt.Spec.RcutBuild(),
	}

	// Replicated setup: select owned atoms from the full system.
	for i := 0; i < full.N(); i++ {
		p := [3]float64{full.Pos[3*i], full.Pos[3*i+1], full.Pos[3*i+2]}
		full.Box.Wrap(p[:])
		if ownerOf(p, grid, full.Box.L) != c.Rank() {
			continue
		}
		rs.pos = append(rs.pos, p[0], p[1], p[2])
		rs.vel = append(rs.vel, full.Vel[3*i:3*i+3]...)
		rs.typ = append(rs.typ, full.Types[i])
		rs.gid = append(rs.gid, int64(i))
	}
	rs.nloc = len(rs.typ)

	var list *neighbor.List
	var res core.Result
	var pending *mpi.Request
	var pendingStep int

	rebuild := func() error {
		// Wrap, migrate, exchange borders, rebuild the local list.
		for i := 0; i < rs.nloc; i++ {
			rs.gbox.Wrap(rs.pos[3*i : 3*i+3])
		}
		rs.migrate()
		rs.borders()
		l, err := neighbor.Build(opt.Spec, rs.pos, rs.typ, rs.nloc, nil, opt.Workers)
		if err != nil {
			return err
		}
		list = l
		return nil
	}
	compute := func() error {
		if err := pot.Compute(rs.pos, rs.typ, rs.nloc, list, nil, &res); err != nil {
			return err
		}
		rs.reverse(res.Force)
		return nil
	}

	record := func(step int, g []float64) {
		if c.Rank() != 0 {
			return
		}
		n := g[4]
		vol := rs.gbox.Volume()
		tK := 0.0
		if n > 1 {
			tK = 2 * g[0] / ((3*n - 3) * units.Boltzmann)
		}
		nkt := n * units.Boltzmann * tK
		stats.Thermo = append(stats.Thermo, md.Thermo{
			Step:        step,
			Kinetic:     g[0],
			Potential:   g[1],
			Temperature: tK,
			Pressure:    (nkt + g[2]/3) / vol * units.PressureEVA3ToBar,
			BoxZ:        rs.gbox.L[2],
			StressZZ:    (nkt/3 + g[3]) / vol * units.PressureEVA3ToBar,
		})
	}
	kinetic := func() float64 {
		var ke float64
		for i := 0; i < rs.nloc; i++ {
			m := full.MassByType[rs.typ[i]]
			ke += 0.5 * m * (rs.vel[3*i]*rs.vel[3*i] + rs.vel[3*i+1]*rs.vel[3*i+1] + rs.vel[3*i+2]*rs.vel[3*i+2])
		}
		return ke * units.KineticToEV
	}
	sample := func(step int) {
		// Local contributions: KE, PE, virial trace, W_zz, atom count.
		local := []float64{kinetic(), res.Energy, res.Virial[0] + res.Virial[4] + res.Virial[8], res.Virial[8], float64(rs.nloc)}
		if opt.UseIallreduce {
			// Consume the previous pending reduction first (one sample
			// of pipeline latency, as in Sec. 5.4).
			if pending != nil {
				record(pendingStep, pending.Wait())
			}
			pending = c.Iallreduce(local)
			pendingStep = step
		} else {
			record(step, c.Allreduce(tagThermo, local))
		}
	}

	if err := rebuild(); err != nil {
		return err
	}
	if err := compute(); err != nil {
		return err
	}

	for step := 1; step <= opt.Steps; step++ {
		// Half kick + drift on locals.
		for i := 0; i < rs.nloc; i++ {
			im := units.ForceToAccel / full.MassByType[rs.typ[i]]
			for a := 0; a < 3; a++ {
				rs.vel[3*i+a] += 0.5 * opt.Dt * res.Force[3*i+a] * im
				rs.pos[3*i+a] += opt.Dt * rs.vel[3*i+a]
			}
		}
		if step%opt.RebuildEvery == 0 {
			if err := rebuild(); err != nil {
				return err
			}
		} else {
			rs.forward()
		}
		if err := compute(); err != nil {
			return err
		}
		for i := 0; i < rs.nloc; i++ {
			im := units.ForceToAccel / full.MassByType[rs.typ[i]]
			for a := 0; a < 3; a++ {
				rs.vel[3*i+a] += 0.5 * opt.Dt * res.Force[3*i+a] * im
			}
		}
		if step%opt.ThermoEvery == 0 {
			sample(step)
		}
	}
	if pending != nil {
		// Drain the pipelined reduction so the last sample is recorded.
		record(pendingStep, pending.Wait())
	}

	// Per-rank summary, gathered with ordinary messages. The traffic
	// counters are snapshotted here — the quiescent point after the MD
	// loop — so the gather below does not count itself.
	vec := make([]float64, svLen)
	vec[svNloc] = float64(rs.nloc)
	vec[svGhosts] = float64(rs.ghostCount())
	vec[svMsgs] = float64(c.SentMessages())
	vec[svBytes] = float64(c.SentBytes())
	vec[svWaitNs] = float64(rs.commWait.Nanoseconds())
	vec[svWindowNs] = float64(rs.commWindow.Nanoseconds())
	vec[svPE] = res.Energy
	vec[svKE] = kinetic()
	if c.Rank() == 0 {
		p := c.Size()
		stats.AtomsPerRank = make([]int, p)
		stats.GhostsPerRank = make([]int, p)
		stats.PEPerRank = make([]float64, p)
		stats.KEPerRank = make([]float64, p)
		stats.OverlapPerRank = make([]float64, p)
		fill := func(r int, v []float64) {
			stats.AtomsPerRank[r] = int(v[svNloc])
			stats.GhostsPerRank[r] = int(v[svGhosts])
			stats.Messages += int64(v[svMsgs])
			stats.Bytes += int64(v[svBytes])
			if v[svWindowNs] > 0 {
				stats.OverlapPerRank[r] = 1 - v[svWaitNs]/v[svWindowNs]
			}
			stats.PEPerRank[r] = v[svPE]
			stats.KEPerRank[r] = v[svKE]
		}
		fill(0, vec)
		for src := 1; src < p; src++ {
			fill(src, c.Recv(src, tagStats).([]float64))
		}
		stats.WireBytes = stats.Bytes + mpi.FrameOverhead*stats.Messages
	} else {
		c.Send(0, tagStats, vec)
	}

	if opt.GatherForces {
		if c.Rank() == 0 {
			stats.ForceByGID = make(map[int64][3]float64)
			stats.PosByGID = make(map[int64][3]float64)
			add := func(gid []int64, force, pos []float64) {
				for k, id := range gid {
					stats.ForceByGID[id] = [3]float64{force[3*k], force[3*k+1], force[3*k+2]}
					stats.PosByGID[id] = [3]float64{pos[3*k], pos[3*k+1], pos[3*k+2]}
				}
			}
			add(rs.gid[:rs.nloc], res.Force[:3*rs.nloc], rs.pos[:3*rs.nloc])
			for src := 1; src < c.Size(); src++ {
				gid := c.Recv(src, tagGather).([]int64)
				force := c.Recv(src, tagGather+1).([]float64)
				pos := c.Recv(src, tagGather+2).([]float64)
				add(gid, force, pos)
			}
		} else {
			c.Send(0, tagGather, rs.gid[:rs.nloc])
			c.Send(0, tagGather+1, res.Force[:3*rs.nloc])
			c.Send(0, tagGather+2, rs.pos[:3*rs.nloc])
		}
	}
	return nil
}
