package domain

import (
	"encoding/binary"
	"fmt"
	"math"

	"deepmd-go/internal/mpi"
)

// Wire codec for atomBundle, the migration/border payload. Registered in
// package init so the kind byte is assigned identically in every process
// of the same binary. The encoding is four u32 element counts followed by
// the flattened fields, little-endian:
//
//	[u32 nPos][u32 nVel][u32 nTyp][u32 nGid]
//	nPos × f64 | nVel × f64 | nTyp × u64 | nGid × u64
//
// Size is exact — this is what fixes the flat per-bundle estimate that
// made World.Bytes() undercount the dominant migrate/border traffic by
// orders of magnitude (ISSUE 9): a bundle now accounts for every pos,
// vel, type and global-id word it actually carries.
func init() {
	mpi.RegisterPayload(atomBundle{}, mpi.PayloadCodec{
		Name: "domain.atomBundle",
		Size: func(p any) int {
			b := p.(atomBundle)
			return 16 + 8*(len(b.Pos)+len(b.Vel)+len(b.Typ)+len(b.Gid))
		},
		Append: func(dst []byte, p any) []byte {
			b := p.(atomBundle)
			dst = binary.LittleEndian.AppendUint32(dst, uint32(len(b.Pos)))
			dst = binary.LittleEndian.AppendUint32(dst, uint32(len(b.Vel)))
			dst = binary.LittleEndian.AppendUint32(dst, uint32(len(b.Typ)))
			dst = binary.LittleEndian.AppendUint32(dst, uint32(len(b.Gid)))
			for _, f := range b.Pos {
				dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(f))
			}
			for _, f := range b.Vel {
				dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(f))
			}
			for _, t := range b.Typ {
				dst = binary.LittleEndian.AppendUint64(dst, uint64(t))
			}
			for _, g := range b.Gid {
				dst = binary.LittleEndian.AppendUint64(dst, uint64(g))
			}
			return dst
		},
		Decode: func(raw []byte) (any, error) {
			if len(raw) < 16 {
				return nil, fmt.Errorf("atomBundle payload %d bytes", len(raw))
			}
			nPos := int(binary.LittleEndian.Uint32(raw[0:]))
			nVel := int(binary.LittleEndian.Uint32(raw[4:]))
			nTyp := int(binary.LittleEndian.Uint32(raw[8:]))
			nGid := int(binary.LittleEndian.Uint32(raw[12:]))
			if len(raw) != 16+8*(nPos+nVel+nTyp+nGid) {
				return nil, fmt.Errorf("atomBundle payload %d bytes for counts %d/%d/%d/%d", len(raw), nPos, nVel, nTyp, nGid)
			}
			var b atomBundle
			off := 16
			if nPos > 0 {
				b.Pos = make([]float64, nPos)
				for i := range b.Pos {
					b.Pos[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[off:]))
					off += 8
				}
			}
			if nVel > 0 {
				b.Vel = make([]float64, nVel)
				for i := range b.Vel {
					b.Vel[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[off:]))
					off += 8
				}
			}
			if nTyp > 0 {
				b.Typ = make([]int, nTyp)
				for i := range b.Typ {
					b.Typ[i] = int(binary.LittleEndian.Uint64(raw[off:]))
					off += 8
				}
			}
			if nGid > 0 {
				b.Gid = make([]int64, nGid)
				for i := range b.Gid {
					b.Gid[i] = int64(binary.LittleEndian.Uint64(raw[off:]))
					off += 8
				}
			}
			return b, nil
		},
		Clone: func(p any) any {
			b := p.(atomBundle)
			return atomBundle{
				Pos: append([]float64(nil), b.Pos...),
				Vel: append([]float64(nil), b.Vel...),
				Typ: append([]int(nil), b.Typ...),
				Gid: append([]int64(nil), b.Gid...),
			}
		},
	})
}
