package domain

import (
	"math"
	"net"
	"sync"
	"testing"

	"deepmd-go/internal/core"
	"deepmd-go/internal/lattice"
	"deepmd-go/internal/md"
	"deepmd-go/internal/mpi"
	"deepmd-go/internal/neighbor"
	"deepmd-go/internal/units"
)

// waterSystem builds the same tiny-model liquid-water setup cmd/dpmd
// uses: nx^3 molecules, O/H masses, a TinyConfig(2) Deep Potential with
// the 4+1 A ghost width.
func waterSystem(t *testing.T, nx int, seed int64) (*md.System, *core.Model, neighbor.Spec) {
	t.Helper()
	cell := lattice.Water(nx, nx, nx, lattice.WaterSpacing, seed)
	sys := &md.System{
		Pos:        cell.Pos,
		Types:      cell.Types,
		MassByType: []float64{units.MassO, units.MassH},
		Box:        cell.Box,
		Vel:        make([]float64, 3*cell.N()),
	}
	cfg := core.TinyConfig(2)
	cfg.TypeNames = []string{"O", "H"}
	cfg.Masses = sys.MassByType
	cfg.Rcut, cfg.RcutSmth, cfg.Skin = 4.0, 0.5, 1.0
	cfg.Sel = []int{12, 24}
	cfg.Seed = seed
	model, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sys, model, neighbor.Spec{Rcut: cfg.Rcut, Skin: cfg.Skin, Sel: cfg.Sel}
}

// runTCPRanks executes opt on `ranks` TCP worlds over real loopback
// sockets — each rank its own TCPWorld, exactly the per-process state the
// launcher spawns — and returns rank 0's Stats.
func runTCPRanks(t *testing.T, ranks int, sys *md.System, newPot func() md.Potential, opt Options) *Stats {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go mpi.ServeRendezvous(ln, ranks)
	coord := ln.Addr().String()

	var root *Stats
	errs := make([]error, ranks)
	var wg sync.WaitGroup
	for rank := 0; rank < ranks; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			w, err := mpi.DialTCP(mpi.TCPConfig{Rank: rank, Size: ranks, Coordinator: coord, Listen: "127.0.0.1:0"})
			if err != nil {
				errs[rank] = err
				return
			}
			defer w.Close()
			stats, err := RunOn(w.Comm(), sys, newPot(), opt)
			if err != nil {
				errs[rank] = err
				return
			}
			if rank == 0 {
				root = stats
			}
		}(rank)
	}
	wg.Wait()
	for rank, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", rank, err)
		}
	}
	return root
}

// The acceptance differential: per-rank energies and per-atom forces on
// the water decomposition must be bit-identical between the in-process
// world and the TCP transport at every rank count.
func TestTCPMatchesInProcessWater(t *testing.T) {
	sys, model, spec := waterSystem(t, 4, 21)
	sys.InitVelocities(330, 22)
	newPot := func() md.Potential { return core.NewEvaluator[float64](model) }

	for _, ranks := range []int{1, 2, 4, 8} {
		opt := Options{
			Ranks: ranks, Dt: 0.0005, Steps: 6, Spec: spec,
			RebuildEvery: 3, ThermoEvery: 2, UseIallreduce: true, GatherForces: true,
		}
		want, err := Run(sys, newPot, opt)
		if err != nil {
			t.Fatalf("ranks=%d inproc: %v", ranks, err)
		}
		got := runTCPRanks(t, ranks, sys, newPot, opt)

		if len(got.Thermo) != len(want.Thermo) {
			t.Fatalf("ranks=%d: thermo samples %d vs %d", ranks, len(got.Thermo), len(want.Thermo))
		}
		for i := range want.Thermo {
			if got.Thermo[i] != want.Thermo[i] {
				t.Fatalf("ranks=%d thermo[%d]: tcp %+v inproc %+v", ranks, i, got.Thermo[i], want.Thermo[i])
			}
		}
		for r := 0; r < ranks; r++ {
			if got.PEPerRank[r] != want.PEPerRank[r] || got.KEPerRank[r] != want.KEPerRank[r] {
				t.Fatalf("ranks=%d rank %d: PE/KE tcp (%v, %v) inproc (%v, %v)",
					ranks, r, got.PEPerRank[r], got.KEPerRank[r], want.PEPerRank[r], want.KEPerRank[r])
			}
			if got.AtomsPerRank[r] != want.AtomsPerRank[r] || got.GhostsPerRank[r] != want.GhostsPerRank[r] {
				t.Fatalf("ranks=%d rank %d: atoms/ghosts differ", ranks, r)
			}
		}
		if math.Abs(want.PEPerRank[0]) == 0 && ranks == 1 {
			t.Fatal("degenerate per-rank PE")
		}
		if len(got.ForceByGID) != sys.N() || len(want.ForceByGID) != sys.N() {
			t.Fatalf("ranks=%d: gathered %d/%d atoms, want %d", ranks, len(got.ForceByGID), len(want.ForceByGID), sys.N())
		}
		for gid, fw := range want.ForceByGID {
			if got.ForceByGID[gid] != fw {
				t.Fatalf("ranks=%d atom %d: force tcp %v inproc %v", ranks, gid, got.ForceByGID[gid], fw)
			}
			if got.PosByGID[gid] != want.PosByGID[gid] {
				t.Fatalf("ranks=%d atom %d: pos differs", ranks, gid)
			}
		}
		if got.WireBytes != got.Bytes+mpi.FrameOverhead*got.Messages {
			t.Fatalf("ranks=%d: WireBytes %d not Bytes %d + %d x Messages %d",
				ranks, got.WireBytes, got.Bytes, mpi.FrameOverhead, got.Messages)
		}
	}
}

// Regression for the flat 16-byte atomBundle estimate: the counted bytes
// must equal the exact encoded size, reconciled here against what the TCP
// transport actually framed onto the socket.
func TestBundleBytesReconcileOverTCP(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go mpi.ServeRendezvous(ln, 2)
	coord := ln.Addr().String()

	full := atomBundle{
		Pos: []float64{1, 2, 3, 4.5, 5.5, 6.5},
		Vel: []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6},
		Typ: []int{0, 1},
		Gid: []int64{7, 8},
	}
	border := atomBundle{Pos: []float64{9, 10, 11}, Typ: []int{1}, Gid: []int64{12}}
	wantBytes := int64(16+8*(6+6+2+2)) + int64(16+8*(3+0+1+1)) // 144 + 56

	worlds := make([]*mpi.TCPWorld, 2)
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for rank := 0; rank < 2; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			w, err := mpi.DialTCP(mpi.TCPConfig{Rank: rank, Size: 2, Coordinator: coord, Listen: "127.0.0.1:0"})
			if err != nil {
				errs[rank] = err
				return
			}
			worlds[rank] = w
			c := w.Comm()
			if rank == 0 {
				c.Send(1, 1, full)
				c.Send(1, 2, border)
			} else {
				got := c.Recv(0, 1).(atomBundle)
				for i := range full.Pos {
					if got.Pos[i] != full.Pos[i] {
						t.Errorf("pos[%d] %v != %v", i, got.Pos[i], full.Pos[i])
					}
				}
				for i := range full.Vel {
					if got.Vel[i] != full.Vel[i] {
						t.Errorf("vel[%d] mismatch", i)
					}
				}
				for i := range full.Typ {
					if got.Typ[i] != full.Typ[i] || got.Gid[i] != full.Gid[i] {
						t.Errorf("typ/gid[%d] mismatch", i)
					}
				}
				gotB := c.Recv(0, 2).(atomBundle)
				if len(gotB.Vel) != 0 || len(gotB.Pos) != 3 || gotB.Gid[0] != 12 {
					t.Errorf("border bundle mismatch: %+v", gotB)
				}
			}
			w.Close()
		}(rank)
	}
	wg.Wait()
	for rank, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", rank, err)
		}
	}

	w0 := worlds[0]
	if w0.Bytes() != wantBytes {
		t.Errorf("counted %d payload bytes, want exact %d", w0.Bytes(), wantBytes)
	}
	if w0.Messages() != 2 {
		t.Errorf("counted %d messages, want 2", w0.Messages())
	}
	if w0.WireBytes() != wantBytes+2*mpi.FrameOverhead {
		t.Errorf("framed %d bytes, want %d", w0.WireBytes(), wantBytes+2*mpi.FrameOverhead)
	}
}

// Regression for the per-step buffer churn: once the plan is built, the
// forward/reverse exchange must not allocate (the buffers and their boxed
// headers are hoisted into stagePlan).
func TestExchangeZeroAlloc(t *testing.T) {
	sys, newPot, spec := ljFullSystem(31)
	_ = newPot
	w := mpi.NewWorld(1)
	w.Run(func(c *mpi.Comm) {
		rs := &rankState{
			comm: c, grid: [3]int{1, 1, 1}, coord: [3]int{0, 0, 0},
			lo: [3]float64{0, 0, 0}, hi: sys.Box.L, gbox: sys.Box,
			cut: spec.RcutBuild(),
		}
		for i := 0; i < sys.N(); i++ {
			p := [3]float64{sys.Pos[3*i], sys.Pos[3*i+1], sys.Pos[3*i+2]}
			sys.Box.Wrap(p[:])
			rs.pos = append(rs.pos, p[0], p[1], p[2])
			rs.vel = append(rs.vel, 0, 0, 0)
			rs.typ = append(rs.typ, sys.Types[i])
			rs.gid = append(rs.gid, int64(i))
		}
		rs.nloc = len(rs.typ)
		rs.borders()
		if rs.ghostCount() == 0 {
			t.Fatal("setup produced no ghosts; exchange not exercised")
		}
		force := make([]float64, 3*rs.nall())
		for i := range force {
			force[i] = float64(i%7) * 0.25
		}
		rs.forward()
		rs.reverse(force)
		allocs := testing.AllocsPerRun(50, func() {
			rs.forward()
			rs.reverse(force)
		})
		if allocs != 0 {
			t.Errorf("exchange path allocates %.0f times per step, want 0", allocs)
		}
	})
}
