package deepmd

// The benchmark harness: one benchmark per table/figure of the paper's
// evaluation (DESIGN.md carries the full experiment index) plus ablations
// of the design choices. Benchmarks print their table/figure alongside the
// usual testing.B metrics; run
//
//	go test -bench=. -benchmem
//
// or regenerate a single artifact with cmd/dpbench.

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"deepmd-go/internal/compress"
	"deepmd-go/internal/core"
	"deepmd-go/internal/descriptor"
	"deepmd-go/internal/experiments"
	"deepmd-go/internal/lattice"
	"deepmd-go/internal/neighbor"
	"deepmd-go/internal/tensor"
)

// benchWaterSetup prepares a small water system with a quick-scale model.
func benchWaterSetup(b *testing.B) (*core.Model, []float64, []int, *neighbor.List, *neighbor.Box) {
	b.Helper()
	cfg := TinyConfig(2)
	cfg.Rcut, cfg.RcutSmth, cfg.Skin = 4.0, 0.5, 1.0
	cfg.Sel = []int{12, 24}
	model, err := core.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	cell := lattice.Water(4, 4, 4, lattice.WaterSpacing, 1)
	spec := neighbor.Spec{Rcut: cfg.Rcut, Skin: cfg.Skin, Sel: cfg.Sel}
	list, err := neighbor.Build(spec, cell.Pos, cell.Types, cell.N(), &cell.Box, 1)
	if err != nil {
		b.Fatal(err)
	}
	return model, cell.Pos, cell.Types, list, &cell.Box
}

// BenchmarkTable1_TimeToSolution measures seconds/step/atom for the three
// execution strategies (the local rows of Table 1).
func BenchmarkTable1_TimeToSolution(b *testing.B) {
	model, pos, types, list, box := benchWaterSetup(b)
	n := len(types)
	var out core.Result
	b.Run("baseline", func(b *testing.B) {
		ev := core.NewBaselineEvaluator(model)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := ev.Compute(pos, types, n, list, box, &out); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(b.Elapsed().Seconds()/float64(b.N)/float64(n), "s/step/atom")
	})
	b.Run("optimized-double", func(b *testing.B) {
		ev := core.NewEvaluator[float64](model)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := ev.Compute(pos, types, n, list, box, &out); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(b.Elapsed().Seconds()/float64(b.N)/float64(n), "s/step/atom")
	})
	b.Run("optimized-mixed", func(b *testing.B) {
		ev := core.NewEvaluator[float32](model)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := ev.Compute(pos, types, n, list, box, &out); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(b.Elapsed().Seconds()/float64(b.N)/float64(n), "s/step/atom")
	})
}

// BenchmarkTable3_CustomOps times the baseline and optimized customized
// operators (Environment / ProdForce / ProdVirial).
func BenchmarkTable3_CustomOps(b *testing.B) {
	cfg := TinyConfig(2)
	cfg.Rcut, cfg.RcutSmth, cfg.Skin = 4.0, 0.5, 1.0
	cfg.Sel = []int{12, 24}
	dcfg := descriptor.Config{Rcut: cfg.Rcut, RcutSmth: cfg.RcutSmth, Sel: cfg.Sel}
	cell := lattice.Water(5, 5, 5, lattice.WaterSpacing, 1)
	spec := neighbor.Spec{Rcut: cfg.Rcut, Skin: cfg.Skin, Sel: cfg.Sel}
	list, err := neighbor.Build(spec, cell.Pos, cell.Types, cell.N(), &cell.Box, 1)
	if err != nil {
		b.Fatal(err)
	}
	var sc descriptor.Scratch
	env, err := sc.Environment(nil, dcfg, cell.Pos, cell.Types, list, &cell.Box)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	nd := make([]float64, env.Nloc*env.Stride*4)
	for i := range nd {
		nd[i] = rng.NormFloat64()
	}
	force := make([]float64, 3*cell.N())

	b.Run("Environment/baseline", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := descriptor.EnvironmentBaseline(nil, dcfg, cell.Pos, cell.Types, list, &cell.Box); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Environment/optimized", func(b *testing.B) {
		var s2 descriptor.Scratch
		for i := 0; i < b.N; i++ {
			if _, err := s2.Environment(nil, dcfg, cell.Pos, cell.Types, list, &cell.Box); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("ProdForce/baseline", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			descriptor.ProdForceBaseline(nil, nd, env, cell.N())
		}
	})
	b.Run("ProdForce/optimized", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			clear(force)
			descriptor.ProdForce(nil, nd, env, force)
		}
	})
	b.Run("ProdVirial/baseline", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			descriptor.ProdVirialBaseline(nil, nd, env)
		}
	})
	b.Run("ProdVirial/optimized", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			descriptor.ProdVirial(nil, nd, env)
		}
	})
}

// BenchmarkFusion_StandardOps times the Sec. 7.1.2 fusions on tall-skinny
// embedding-shaped matrices.
func BenchmarkFusion_StandardOps(b *testing.B) {
	const rows, in, out = 4096, 50, 100
	rng := rand.New(rand.NewSource(1))
	x := tensor.NewMatrix[float64](rows, in)
	w := tensor.NewMatrix[float64](in, out)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	for i := range w.Data {
		w.Data[i] = rng.NormFloat64()
	}
	bias := make([]float64, out)
	dst := tensor.NewMatrix[float64](rows, out)
	b.Run("MATMUL+SUM/unfused", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tensor.BiasAdd(nil, tensor.MatMul(nil, x, w), bias)
		}
	})
	b.Run("MATMUL+SUM/fusedGEMM", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tensor.GemmBias(nil, x, w, bias, dst)
		}
	})
	y := tensor.NewMatrix[float64](rows, 2*in)
	b.Run("CONCAT+SUM/unfused", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tensor.Add(nil, tensor.ConcatCols(nil, x), y)
		}
	})
	b.Run("CONCAT+SUM/fusedSkip", func(b *testing.B) {
		yw := y.Clone()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tensor.AddSkipDouble(nil, x, yw)
		}
	})
	pre := tensor.NewMatrix[float64](rows, out)
	for i := range pre.Data {
		pre.Data[i] = rng.NormFloat64()
	}
	yv := tensor.NewMatrix[float64](rows, out)
	gv := tensor.NewMatrix[float64](rows, out)
	b.Run("TANH+Grad/unfused", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			t := tensor.Tanh(nil, pre)
			tensor.TanhGrad(nil, t)
		}
	})
	b.Run("TANH+Grad/fused", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tensor.TanhWithGrad(nil, pre, yv, gv)
		}
	})
}

// BenchmarkMixed_Precision contrasts double vs mixed full evaluations
// (Sec. 7.1.3: ~1.5x on GPU).
func BenchmarkMixed_Precision(b *testing.B) {
	model, pos, types, list, box := benchWaterSetup(b)
	n := len(types)
	var out core.Result
	b.Run("double", func(b *testing.B) {
		ev := core.NewEvaluator[float64](model)
		for i := 0; i < b.N; i++ {
			if err := ev.Compute(pos, types, n, list, box, &out); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("mixed", func(b *testing.B) {
		ev := core.NewEvaluator[float32](model)
		for i := 0; i < b.N; i++ {
			if err := ev.Compute(pos, types, n, list, box, &out); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationSort contrasts the compressed-u64 radix sort against
// the AoS struct sort during neighbor formatting (Sec. 5.2.2).
func BenchmarkAblationSort(b *testing.B) {
	cell := lattice.Water(5, 5, 5, lattice.WaterSpacing, 4)
	spec := neighbor.Spec{Rcut: 4.0, Skin: 1.0, Sel: []int{12, 24}}
	list, err := neighbor.Build(spec, cell.Pos, cell.Types, cell.N(), &cell.Box, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("structSort", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := neighbor.FormatBaseline(spec, list); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("compressedRadix", func(b *testing.B) {
		var fm neighbor.Formatter
		for i := 0; i < b.N; i++ {
			if _, err := fm.Format(spec, list); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationArena contrasts per-step allocation against the
// init-time arena (Sec. 5.2.2's GPU memory trunk): the baseline evaluator
// allocates per call, the optimized one reuses slabs. -benchmem shows the
// allocation counts.
func BenchmarkAblationArena(b *testing.B) {
	model, pos, types, list, box := benchWaterSetup(b)
	n := len(types)
	var out core.Result
	b.Run("allocatingBaseline", func(b *testing.B) {
		ev := core.NewBaselineEvaluator(model)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := ev.Compute(pos, types, n, list, box, &out); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("arenaOptimized", func(b *testing.B) {
		ev := core.NewEvaluator[float64](model)
		// Warm the arena so the steady state is measured.
		if err := ev.Compute(pos, types, n, list, box, &out); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := ev.Compute(pos, types, n, list, box, &out); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationComm contrasts Allreduce vs Iallreduce thermo output at
// an artificially high output frequency (Sec. 5.4).
func BenchmarkAblationComm(b *testing.B) {
	run := func(b *testing.B, useI bool) {
		cell := lattice.FCC(3, 3, 3, 4.0)
		spec := neighbor.Spec{Rcut: 2.5, Skin: 0.3, Sel: []int{64}}
		for i := 0; i < b.N; i++ {
			sys := &System{
				Pos:        append([]float64(nil), cell.Pos...),
				Types:      cell.Types,
				MassByType: []float64{63.5},
				Box:        cell.Box,
				Vel:        make([]float64, 3*cell.N()),
			}
			sys.InitVelocities(300, 3)
			_, err := RunParallel(sys, func() Potential { return NewLennardJones(0.0103, 2.2, 2.5) }, ParallelOptions{
				Ranks: 4, Grid: [3]int{2, 2, 1}, Dt: 0.001, Steps: 20, Spec: spec,
				RebuildEvery: 10, ThermoEvery: 1, UseIallreduce: useI,
			})
			if err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("Allreduce", func(b *testing.B) { run(b, false) })
	b.Run("Iallreduce", func(b *testing.B) { run(b, true) })
}

// BenchmarkFig5_StrongScalingModel regenerates the Fig. 5 tables (model
// evaluation is cheap; printed once).
func BenchmarkFig5_StrongScalingModel(b *testing.B) {
	var s string
	for i := 0; i < b.N; i++ {
		s = experiments.Fig5Table()
	}
	if b.N > 0 {
		b.Logf("\n%s", s)
	}
}

// BenchmarkFig6_WeakScalingModel regenerates the Fig. 6 tables.
func BenchmarkFig6_WeakScalingModel(b *testing.B) {
	var s string
	for i := 0; i < b.N; i++ {
		s = experiments.Fig6Table()
	}
	if b.N > 0 {
		b.Logf("\n%s", s)
	}
}

// BenchmarkTable4_ScalingDetail regenerates Table 4.
func BenchmarkTable4_ScalingDetail(b *testing.B) {
	var s string
	for i := 0; i < b.N; i++ {
		s = experiments.Table4Text()
	}
	if b.N > 0 {
		b.Logf("\n%s", s)
	}
}

// BenchmarkFig3_OperatorBreakdown runs the instrumented evaluations behind
// Fig. 3 once per iteration.
func BenchmarkFig3_OperatorBreakdown(b *testing.B) {
	var res *experiments.Fig3Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.Fig3(experiments.Quick, 1)
		if err != nil {
			b.Fatal(err)
		}
	}
	if res != nil {
		b.Logf("\n%s", res)
	}
}

// BenchmarkParallelRanks measures the real domain-decomposed step cost at
// increasing simulated rank counts (communication protocol overhead).
func BenchmarkParallelRanks(b *testing.B) {
	cell := lattice.FCC(4, 4, 4, 4.05)
	spec := neighbor.Spec{Rcut: 4.0, Skin: 1.0, Sel: []int{40}}
	cfg := TinyConfig(1)
	cfg.Rcut, cfg.RcutSmth, cfg.Skin = 4.0, 1.0, 1.0
	cfg.Sel = []int{40}
	model, err := core.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	for _, ranks := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("ranks=%d", ranks), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sys := &System{
					Pos:        append([]float64(nil), cell.Pos...),
					Types:      cell.Types,
					MassByType: []float64{63.5},
					Box:        cell.Box,
					Vel:        make([]float64, 3*cell.N()),
				}
				sys.InitVelocities(300, 3)
				if _, err := RunParallel(sys, func() Potential { return core.NewEvaluator[float64](model) }, ParallelOptions{
					Ranks: ranks, Dt: 0.001, Steps: 10, Spec: spec,
					RebuildEvery: 5, ThermoEvery: 10,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSetup_Strategies measures the Sec. 7.3 setup contrast.
func BenchmarkSetup_Strategies(b *testing.B) {
	var txt string
	for i := 0; i < b.N; i++ {
		var err error
		txt, _, err = experiments.SetupText(experiments.Quick, 4)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Logf("\n%s", txt)
}

// BenchmarkNeighborBuild contrasts the serial cell-binned neighbor build
// against the parallel build (goroutine pool over atom blocks, per-worker
// scratch merged into the packed list) on a >=100k-atom water system —
// the neighbor-construction hot path that Lu et al. (arXiv:2004.11658)
// identify as a first-order cost at scale. On a multi-core machine the
// workers>=4 runs beat serial; with GOMAXPROCS=1 they only verify the
// pool adds no meaningful overhead.
func BenchmarkNeighborBuild(b *testing.B) {
	cell := lattice.Water(33, 33, 33, lattice.WaterSpacing, 7) // 107,811 atoms
	spec := neighbor.Spec{Rcut: 4.0, Skin: 1.0, Sel: []int{12, 24}}
	n := cell.N()
	run := func(b *testing.B, workers int) {
		var last *neighbor.List
		for i := 0; i < b.N; i++ {
			list, err := neighbor.Build(spec, cell.Pos, cell.Types, n, &cell.Box, workers)
			if err != nil {
				b.Fatal(err)
			}
			last = list
		}
		b.StopTimer()
		b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Matoms/s")
		var pairs int
		for _, row := range last.Entries {
			pairs += len(row)
		}
		b.ReportMetric(float64(pairs)/1e6, "Mpairs")
	}
	b.Run("serial", func(b *testing.B) { run(b, 1) })
	for _, w := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) { run(b, w) })
	}
}

// BenchmarkGemmBlocked sweeps the blocked GEMM kernel against the naive
// serial reference over the paper's layer shapes: the embedding net's
// batched 25->50 and 50->100 doubling layers (rows = atoms x sel) and the
// fitting net's 240x240 hidden layers (ISSUE 2 acceptance shape: M >= 4096,
// K = N = 240). Worker counts sweep the row-block goroutine pool; on a
// single-core machine only the w1 contrast is meaningful.
func BenchmarkGemmBlocked(b *testing.B) {
	shapes := []struct {
		label   string
		m, k, n int
	}{
		{"fit-4096x240x240", 4096, 240, 240},
		{"embed2-11776x25x50", 11776, 25, 50},
		{"embed3-11776x50x100", 11776, 50, 100},
	}
	for _, s := range shapes {
		rng := rand.New(rand.NewSource(1))
		x := tensor.NewMatrix[float64](s.m, s.k)
		w := tensor.NewMatrix[float64](s.k, s.n)
		for i := range x.Data {
			x.Data[i] = rng.NormFloat64()
		}
		for i := range w.Data {
			w.Data[i] = rng.NormFloat64()
		}
		c := tensor.NewMatrix[float64](s.m, s.n)
		flops := 2 * float64(s.m) * float64(s.k) * float64(s.n)
		run := func(o tensor.Opts) func(b *testing.B) {
			return func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					tensor.GemmOpt(o, nil, 1, x, w, 0, c)
				}
				b.ReportMetric(flops*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOPS")
			}
		}
		b.Run(s.label+"/naive", run(tensor.Opts{Kernel: tensor.Naive}))
		b.Run(s.label+"/blocked-w1", run(tensor.Opts{}))
		for _, w := range []int{2, 4, 8} {
			b.Run(fmt.Sprintf("%s/blocked-w%d", s.label, w), run(tensor.Opts{Workers: w}))
		}
	}
}

// BenchmarkGEMM measures the raw kernel on a fitting-net-shaped matrix.
func BenchmarkGEMM(b *testing.B) {
	for _, shape := range [][3]int{{256, 64, 96}, {1024, 50, 100}} {
		m, k, n := shape[0], shape[1], shape[2]
		b.Run(fmt.Sprintf("%dx%dx%d", m, k, n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			x := tensor.NewMatrix[float64](m, k)
			w := tensor.NewMatrix[float64](k, n)
			for i := range x.Data {
				x.Data[i] = rng.NormFloat64()
			}
			for i := range w.Data {
				w.Data[i] = rng.NormFloat64()
			}
			c := tensor.NewMatrix[float64](m, n)
			b.SetBytes(int64(8 * (m*k + k*n + m*n)))
			for i := 0; i < b.N; i++ {
				tensor.Gemm(nil, 1, x, w, 0, c)
			}
			flops := 2 * float64(m) * float64(k) * float64(n)
			b.ReportMetric(flops*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOPS")
		})
	}
}

// BenchmarkEvalBatched contrasts the chunk-batched descriptor pipeline
// (ISSUE 3, Sec. 5.3.1: merge the per-atom embedding/descriptor matrices
// into strided-batched GEMMs) against the retained per-atom reference path
// on the Quick water (nt = 2) and copper (nt = 1) shapes, at Workers = 1
// (batch x row-block parallelism inside the GEMMs) and Workers = 4 (chunk
// fan-out). The networks and customized operators are identical between
// the two paths; the delta is the descriptor stage's execution strategy.
// `dpbench -exp batch` reports the same contrast best-of-reps with the
// force cross-check.
func BenchmarkEvalBatched(b *testing.B) {
	shapes := []struct {
		label string
		water bool
		sel   []int
	}{
		{"water", true, []int{12, 24}},
		{"copper", false, []int{36}},
	}
	for _, s := range shapes {
		nt := len(s.sel)
		cfg := TinyConfig(nt)
		cfg.Rcut, cfg.RcutSmth, cfg.Skin = 4.0, 0.5, 1.0
		cfg.Sel = s.sel
		cfg.EmbedWidths = []int{8, 16, 32}
		cfg.MAxis = 8
		cfg.FitWidths = []int{32, 32, 32}
		cfg.ChunkSize = 64
		var cell *lattice.System
		if s.water {
			cell = lattice.Water(4, 4, 4, lattice.WaterSpacing, 3)
		} else {
			c := lattice.FCC(4, 4, 4, 3.615)
			lattice.Perturb(c, 0.05, 3)
			cell = c
		}
		spec := neighbor.Spec{Rcut: cfg.Rcut, Skin: cfg.Skin, Sel: cfg.Sel}
		list, err := neighbor.Build(spec, cell.Pos, cell.Types, cell.N(), &cell.Box, 1)
		if err != nil {
			b.Fatal(err)
		}
		n := cell.N()
		for _, workers := range []int{1, 4} {
			for _, perAtom := range []bool{true, false} {
				lbl := "batched"
				if perAtom {
					lbl = "peratom"
				}
				b.Run(fmt.Sprintf("%s/workers=%d/%s", s.label, workers, lbl), func(b *testing.B) {
					wcfg := cfg
					wcfg.Workers = workers
					model, err := core.New(wcfg)
					if err != nil {
						b.Fatal(err)
					}
					ev := core.NewEvaluator[float64](model)
					ev.SetPerAtomDescriptors(perAtom)
					var out core.Result
					// Warm the arenas so the steady state is measured.
					if err := ev.Compute(cell.Pos, cell.Types, n, list, &cell.Box, &out); err != nil {
						b.Fatal(err)
					}
					b.ReportAllocs()
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						if err := ev.Compute(cell.Pos, cell.Types, n, list, &cell.Box, &out); err != nil {
							b.Fatal(err)
						}
					}
					b.ReportMetric(b.Elapsed().Seconds()/float64(b.N)/float64(n)*1e9, "ns/step/atom")
				})
			}
		}
	}
}

// BenchmarkEngineServe measures aggregate evaluation throughput of ONE
// goroutine-safe Engine under 1, 2, 4 and 8 concurrent callers (ISSUE 5
// acceptance: >= 3x aggregate throughput at 8 callers vs 1 on a
// multi-core machine, 0 B/op steady state — each caller borrows a pooled
// evaluator with warm arenas, so the only possible scaling loss is pool
// handoff). Per-evaluator Workers stays 1: serving parallelism comes from
// independent requests, not from splitting one request. On a single-core
// host the concurrent rows only verify the pool adds no meaningful
// overhead; `dpbench -exp serve` reports the same contrast best-of-reps
// with the bit-identity cross-check.
func BenchmarkEngineServe(b *testing.B) {
	cfg := TinyConfig(2)
	cfg.Rcut, cfg.RcutSmth, cfg.Skin = 4.0, 0.5, 1.0
	cfg.Sel = []int{12, 24}
	model, err := core.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	cell := lattice.Water(4, 4, 4, lattice.WaterSpacing, 1)
	spec := neighbor.Spec{Rcut: cfg.Rcut, Skin: cfg.Skin, Sel: cfg.Sel}
	list, err := neighbor.Build(spec, cell.Pos, cell.Types, cell.N(), &cell.Box, 1)
	if err != nil {
		b.Fatal(err)
	}
	n := cell.N()
	for _, conc := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("conc=%d", conc), func(b *testing.B) {
			eng, err := Open(model, WithWorkers(1), WithMaxConcurrency(conc))
			if err != nil {
				b.Fatal(err)
			}
			// Warm every pooled evaluator's arenas so the measured loop is
			// the steady state.
			if err := eng.Prewarm(cell.Pos, cell.Types, n, list, &cell.Box); err != nil {
				b.Fatal(err)
			}
			var wg sync.WaitGroup
			b.ReportAllocs()
			b.ResetTimer()
			// b.N total evaluations, fanned over conc goroutines.
			per := b.N / conc
			rem := b.N % conc
			errs := make([]error, conc)
			for g := 0; g < conc; g++ {
				k := per
				if g < rem {
					k++
				}
				wg.Add(1)
				go func(g, k int) {
					defer wg.Done()
					var out core.Result
					for i := 0; i < k; i++ {
						if err := eng.EvaluateInto(cell.Pos, cell.Types, n, list, &cell.Box, &out); err != nil {
							errs[g] = err
							return
						}
					}
				}(g, k)
			}
			wg.Wait()
			for _, err := range errs {
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "evals/s")
		})
	}
}

// BenchmarkEvalCompressed contrasts the tabulated-embedding pipeline
// (ISSUE 4, the successor papers' model compression) against the
// exact-batched pipeline on the Quick water/copper shapes and on the
// paper's network geometry (embedding 25-50-100, fitting 240³, M' = 16 —
// where the embedding GEMMs the table replaces dominate the step, the
// regime the 86-PFLOPS paper targets). Both variants report allocations:
// the compressed steady state must stay at 0 B/op. `dpbench -exp
// compress` reports the same contrast best-of-reps with the force
// cross-check; `-full` runs it at the full paper geometry and system.
func BenchmarkEvalCompressed(b *testing.B) {
	shapes := []struct {
		label    string
		water    bool
		sel      []int
		paperNet bool
	}{
		{"water", true, []int{12, 24}, false},
		{"copper", false, []int{36}, false},
		{"water-papernet", true, []int{12, 24}, true},
	}
	for _, s := range shapes {
		nt := len(s.sel)
		cfg := TinyConfig(nt)
		cfg.Rcut, cfg.RcutSmth, cfg.Skin = 4.0, 0.5, 1.0
		cfg.Sel = s.sel
		cfg.EmbedWidths = []int{8, 16, 32}
		cfg.MAxis = 8
		cfg.FitWidths = []int{32, 32, 32}
		cfg.ChunkSize = 64
		if s.paperNet {
			cfg.EmbedWidths = []int{25, 50, 100}
			cfg.MAxis = 16
			cfg.FitWidths = []int{240, 240, 240}
		}
		var cell *lattice.System
		if s.water {
			cell = lattice.Water(4, 4, 4, lattice.WaterSpacing, 3)
		} else {
			c := lattice.FCC(4, 4, 4, 3.615)
			lattice.Perturb(c, 0.05, 3)
			cell = c
		}
		spec := neighbor.Spec{Rcut: cfg.Rcut, Skin: cfg.Skin, Sel: cfg.Sel}
		list, err := neighbor.Build(spec, cell.Pos, cell.Types, cell.N(), &cell.Box, 1)
		if err != nil {
			b.Fatal(err)
		}
		n := cell.N()
		for _, compressed := range []bool{false, true} {
			lbl := "batched"
			if compressed {
				lbl = "compressed"
			}
			b.Run(fmt.Sprintf("%s/%s", s.label, lbl), func(b *testing.B) {
				model, err := core.New(cfg)
				if err != nil {
					b.Fatal(err)
				}
				ev := core.NewEvaluator[float64](model)
				if compressed {
					if err := ev.SetCompressedEmbedding(compress.Spec{}); err != nil {
						b.Fatal(err)
					}
				}
				var out core.Result
				// Warm the arenas so the steady state is measured.
				if err := ev.Compute(cell.Pos, cell.Types, n, list, &cell.Box, &out); err != nil {
					b.Fatal(err)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := ev.Compute(cell.Pos, cell.Types, n, list, &cell.Box, &out); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(b.Elapsed().Seconds()/float64(b.N)/float64(n)*1e9, "ns/step/atom")
			})
		}
	}
}
