// Package deepmd is a pure-Go reproduction of the optimized DeePMD-kit of
// "Pushing the limit of molecular dynamics with ab initio accuracy to 100
// million atoms with machine learning" (SC '20): Deep Potential molecular
// dynamics with the paper's data-layout, operator-fusion, mixed-precision
// and parallelization optimizations, plus everything needed to regenerate
// its evaluation — system builders, an MD engine, a message-passing
// runtime, training against analytic "ab initio" oracles, analysis
// (RDF/CNA) and a calibrated Summit performance model.
//
// The entry point is Open: it resolves the execution choices the paper's
// optimizations introduced — precision (Sec. 5.2.3), descriptor execution
// strategy (Secs. 4 and 5.3.1, plus the successor papers' tabulated
// compression), per-evaluation parallelism — into one validated Plan and
// returns a goroutine-safe Engine backed by a pool of evaluators. Quick
// start:
//
//	model, _ := deepmd.NewModel(deepmd.TinyConfig(2))
//	eng, _ := deepmd.Open(model)                // Auto: fastest legal plan
//	sys := deepmd.BuildWater(4, 4, 4, 1)        // 64 molecules
//	sim, _ := deepmd.NewSimulation(sys, eng, deepmd.SimOptions{Dt: 5e-4,
//		Spec: deepmd.SpecFor(model.Cfg)})
//	sim.Run(500)
//
// Options select non-default plans, validated once at Open time:
//
//	deepmd.Open(model,
//		deepmd.WithPrecision(deepmd.Mixed),     // float32 network math
//		deepmd.WithStrategy(deepmd.Compressed), // needs attached tables
//		deepmd.WithWorkers(8),                  // goroutines per evaluation
//		deepmd.WithMaxConcurrency(16))          // concurrent evaluations served
//
// One Engine serves any number of goroutines: concurrent Compute /
// EvaluateInto calls each borrow a pooled evaluator (zero steady-state
// allocation), and Ensemble runs k replica simulations over the shared
// pool. See examples/ for complete programs and DESIGN.md ("Engine & plan
// resolution") / EXPERIMENTS.md for the reproduction map.
package deepmd

import (
	"deepmd-go/internal/analysis"
	"deepmd-go/internal/compress"
	"deepmd-go/internal/core"
	"deepmd-go/internal/domain"
	"deepmd-go/internal/lattice"
	"deepmd-go/internal/learn"
	"deepmd-go/internal/md"
	"deepmd-go/internal/mpi"
	"deepmd-go/internal/neighbor"
	"deepmd-go/internal/perfmodel"
	"deepmd-go/internal/refpot"
	"deepmd-go/internal/train"
	"deepmd-go/internal/units"
)

// Model configuration and construction.

// Config describes a Deep Potential model (cutoffs, sel, network widths).
type Config = core.Config

// Model holds the trained (or initialized) Deep Potential networks.
type Model = core.Model

// Result is one potential evaluation: energy, atomic energies, forces and
// the virial tensor.
type Result = core.Result

// NewModel constructs a model with freshly initialized weights.
func NewModel(cfg Config) (*Model, error) { return core.New(cfg) }

// LoadModel reads a model file written by Model.SaveFile.
func LoadModel(path string) (*Model, error) { return core.LoadFile(path) }

// CompressSpec configures the tabulated-embedding build of
// Model.AttachCompressedTables (domain bounds and segments per table);
// the zero value selects the default domain and resolution for the
// model's cutoff. Attach tables BEFORE Open: the Compressed strategy
// requires them, and Auto prefers them.
type CompressSpec = compress.Spec

// AttachCompressedTables tabulates the model's embedding nets as
// piecewise quintics and stores them on the model, so checkpoints
// round-trip compressed and Open can serve the Compressed strategy.
// Facade form of Model.AttachCompressedTables for callers outside this
// module (internal/compress is unimportable there).
func AttachCompressedTables(m *Model, spec CompressSpec) error {
	return m.AttachCompressedTables(spec)
}

// WaterConfig is the paper's liquid-water model geometry (Sec. 6.1).
func WaterConfig() Config { return core.WaterConfig() }

// CopperConfig is the paper's copper model geometry (Sec. 6.1).
func CopperConfig() Config { return core.CopperConfig() }

// TinyConfig is a scaled-down model for experiments on small machines.
func TinyConfig(ntypes int) Config { return core.TinyConfig(ntypes) }

// The Engine API: one options-driven entry point over every execution
// strategy and precision.

// Potential is anything that can compute energies and forces for the MD
// engine: the Engine, raw DP evaluators, the baseline evaluator, and the
// reference potentials all implement it.
type Potential = md.Potential

// Precision selects the numeric execution of the pipeline: Double or
// Mixed (float32 network math between float64 boundaries, Sec. 5.2.3).
type Precision = core.Precision

// Strategy selects the descriptor execution strategy: Auto picks the
// fastest legal one for the model, Baseline is the 2018 serial execution,
// PerAtom the retained per-atom reference loops, Batched the chunk-batched
// strided-GEMM pipeline (Sec. 5.3.1), Compressed the tabulated-embedding
// pipeline of the successor papers (requires attached tables).
type Strategy = core.Strategy

// Precision and strategy values accepted by the Open options.
const (
	Double = core.Double
	Mixed  = core.Mixed

	Auto       = core.StrategyAuto
	Baseline   = core.StrategyBaseline
	PerAtom    = core.StrategyPerAtom
	Batched    = core.StrategyBatched
	Compressed = core.StrategyCompressed
)

// Plan is a fully resolved execution plan; Engine.Plan reports the one an
// engine runs.
type Plan = core.Plan

// Sentinel errors of plan resolution and strategy dispatch; match with
// errors.Is.
var (
	// ErrStrategyUnavailable reports a precision x strategy x model
	// combination that cannot execute (Open validation).
	ErrStrategyUnavailable = core.ErrStrategyUnavailable
	// ErrNoGradsForCompressed reports parameter gradients requested on
	// the weightless compressed embedding path.
	ErrNoGradsForCompressed = core.ErrNoGradsForCompressed
)

// Option configures Open.
type Option func(*Plan)

// WithPrecision selects Double or Mixed execution (default Double).
func WithPrecision(p Precision) Option { return func(pl *Plan) { pl.Precision = p } }

// WithStrategy selects the descriptor execution strategy (default Auto:
// Compressed when the model ships tables, else Batched).
func WithStrategy(s Strategy) Option { return func(pl *Plan) { pl.Strategy = s } }

// WithWorkers sets the parallelism budget of one evaluation — chunk
// fan-out over goroutines, falling back to intra-GEMM row blocks when the
// chunk loop degenerates to serial (default: the model config's Workers).
// The same budget feeds neighbor-list rebuilds of simulations driven by
// the engine.
func WithWorkers(n int) Option { return func(pl *Plan) { pl.Workers = n } }

// WithGemmWorkers overrides the goroutine count inside each blocked GEMM
// call when the chunk loop is serial (default: WithWorkers' value).
func WithGemmWorkers(n int) Option { return func(pl *Plan) { pl.GemmWorkers = n } }

// WithMaxConcurrency bounds how many concurrent evaluations the engine
// serves — the size of its pooled-evaluator free list (default:
// GOMAXPROCS). Evaluators are built lazily, so an over-provisioned bound
// costs nothing until used.
func WithMaxConcurrency(n int) Option { return func(pl *Plan) { pl.MaxConcurrency = n } }

// Engine is the goroutine-safe serving handle over one model: a resolved
// Plan plus a pool of per-goroutine evaluators with their arenas. It
// implements Potential, so it plugs into NewSimulation and RunParallel
// seams directly, and exposes Evaluate / EvaluateInto for raw force
// calls from concurrent goroutines with zero steady-state allocation.
type Engine struct {
	*core.Engine
}

// Open validates the full option combination against the model once and
// returns an Engine executing the resolved plan. Strategy and precision
// conflicts (Compressed without attached tables, Baseline with Mixed)
// surface here as ErrStrategyUnavailable.
func Open(model *Model, opts ...Option) (*Engine, error) {
	var req Plan
	for _, o := range opts {
		o(&req)
	}
	ce, err := core.NewEngine(model, req)
	if err != nil {
		return nil, err
	}
	return &Engine{ce}, nil
}

// Ensemble runs one replica simulation per system over this engine's
// evaluator pool, at most Plan().MaxConcurrency replicas at a time, and
// returns the finished simulations (with their thermo logs) in order.
// Replica trajectories are bit-identical to running each serially.
func (e *Engine) Ensemble(systems []*System, opt SimOptions, steps int) ([]*Simulation, error) {
	return md.RunEnsemble(e, systems, opt, steps, e.Plan().MaxConcurrency)
}

// Legacy evaluator constructors. They predate Open and remain as thin
// shims so existing callers keep compiling; the returned raw evaluators
// are single-goroutine (see core.Evaluator) and expose the post-hoc
// setters Open's options replaced.

// NewDoubleEvaluator runs the optimized pipeline in double precision.
//
// Deprecated: use Open(m) (or Open(m, WithPrecision(Double),
// WithStrategy(Batched))) — the Engine is goroutine-safe and validates
// its configuration once.
func NewDoubleEvaluator(m *Model) *core.Evaluator[float64] {
	return core.NewEvaluator[float64](m)
}

// NewMixedEvaluator runs the optimized pipeline with single-precision
// network math between double-precision boundaries (Sec. 5.2.3).
//
// Deprecated: use Open(m, WithPrecision(Mixed)).
func NewMixedEvaluator(m *Model) *core.Evaluator[float32] {
	return core.NewEvaluator[float32](m)
}

// NewBaselineEvaluator runs the 2018 serial DeePMD-kit execution strategy
// (unfused ops, AoS neighbor handling, per-call allocation).
//
// Deprecated: use Open(m, WithStrategy(Baseline)).
func NewBaselineEvaluator(m *Model) *core.BaselineEvaluator {
	return core.NewBaselineEvaluator(m)
}

// MD engine.

// System is the mutable atomic state of a simulation.
type System = md.System

// SimOptions configures a serial simulation.
type SimOptions = md.Options

// Simulation drives one serial MD run.
type Simulation = md.Sim

// Thermo is one thermodynamic sample.
type Thermo = md.Thermo

// Thermostats: Berendsen (weak coupling), Rescale (hard), Langevin
// (stochastic, canonical-ensemble fluctuations).
type (
	Berendsen = md.Berendsen
	Rescale   = md.Rescale
	Langevin  = md.Langevin
)

// NewSimulation validates options and prepares a serial simulation.
func NewSimulation(sys *System, pot Potential, opt SimOptions) (*Simulation, error) {
	return md.NewSim(sys, pot, opt)
}

// NeighborSpec describes cutoff and skin requirements; SpecFor derives it
// from a model config.
type NeighborSpec = neighbor.Spec

// SpecFor returns the neighbor requirements of a model configuration.
func SpecFor(cfg Config) NeighborSpec {
	return neighbor.Spec{Rcut: cfg.Rcut, Skin: cfg.Skin, Sel: cfg.Sel}
}

// Box is an orthorhombic periodic box.
type Box = neighbor.Box

// NeighborList is a raw neighbor list consumed by Potential.Compute.
type NeighborList = neighbor.List

// BuildNeighborList constructs the periodic neighbor list of a system
// using workers goroutines (pass Config.Workers to keep the build in step
// with the parallel evaluator; <= 1 builds serially).
func BuildNeighborList(sys *System, spec NeighborSpec, workers int) (*NeighborList, error) {
	return neighbor.Build(spec, sys.Pos, sys.Types, sys.N(), &sys.Box, workers)
}

// Parallel (domain-decomposed) runs.

// ParallelOptions configures a domain-decomposed run over simulated ranks.
type ParallelOptions = domain.Options

// ParallelStats is the result of a parallel run.
type ParallelStats = domain.Stats

// RunParallel executes a domain-decomposed simulation (Sec. 5.4) with a
// per-rank potential built by newPot. Ranks sharing one Engine should use
// RunParallelShared instead.
func RunParallel(sys *System, newPot func() Potential, opt ParallelOptions) (*ParallelStats, error) {
	return domain.Run(sys, newPot, opt)
}

// RunParallelShared executes a domain-decomposed simulation whose ranks
// all evaluate through one goroutine-safe potential — an Engine, whose
// pool serves the ranks' concurrent force calls and supplies the per-rank
// neighbor worker budget when opt.Workers is unset. Because every rank
// evaluates concurrently with the engine's full per-evaluation Workers,
// open the engine with WithWorkers(budget / Ranks) and
// WithMaxConcurrency(>= Ranks); see domain.RunShared.
func RunParallelShared(sys *System, pot Potential, opt ParallelOptions) (*ParallelStats, error) {
	return domain.RunShared(sys, pot, opt)
}

// RunParallelOn executes this process's rank of a distributed simulation
// on an already-connected communicator — the SPMD entry point used by
// cmd/dpmd's tcp transport, where every process calls it with the same
// full System and its own rank's Comm (see mpi.DialTCP). Stats are
// populated on rank 0 only.
func RunParallelOn(c *mpi.Comm, sys *System, pot Potential, opt ParallelOptions) (*ParallelStats, error) {
	return domain.RunOn(c, sys, pot, opt)
}

// System builders.

// BuildWater places nx x ny x nz water molecules at liquid density with
// randomized orientations, returning a System with O/H types and masses.
func BuildWater(nx, ny, nz int, seed int64) *System {
	cell := lattice.Water(nx, ny, nz, lattice.WaterSpacing, seed)
	return &System{
		Pos:        cell.Pos,
		Types:      cell.Types,
		MassByType: []float64{units.MassO, units.MassH},
		Box:        cell.Box,
		Vel:        make([]float64, 3*cell.N()),
	}
}

// BuildCopper builds an FCC copper supercell (4*nx*ny*nz atoms).
func BuildCopper(nx, ny, nz int) *System {
	cell := lattice.FCC(nx, ny, nz, lattice.CuLatticeConst)
	return &System{
		Pos:        cell.Pos,
		Types:      cell.Types,
		MassByType: []float64{units.MassCu},
		Box:        cell.Box,
		Vel:        make([]float64, 3*cell.N()),
	}
}

// BuildNanocrystal builds a Schiotz-style nanocrystalline copper sample:
// ngrains randomly oriented Voronoi grains in a cubic box of edge l
// Angstrom (Fig. 7(a)).
func BuildNanocrystal(l float64, ngrains int, seed int64) *System {
	cell := lattice.Nanocrystal(l, ngrains, lattice.CuLatticeConst, 2.2, seed)
	return &System{
		Pos:        cell.Pos,
		Types:      cell.Types,
		MassByType: []float64{units.MassCu},
		Box:        cell.Box,
		Vel:        make([]float64, 3*cell.N()),
	}
}

// Reference potentials ("ab initio" oracles and EFF baselines).

// NewSuttonChenCu returns the Sutton-Chen EAM copper potential.
func NewSuttonChenCu() Potential { return refpot.NewSuttonChenCu() }

// NewToyWater returns the flexible three-site water oracle.
func NewToyWater() Potential { return refpot.NewToyWater() }

// NewLennardJones returns a single-species truncated-shifted LJ potential.
func NewLennardJones(eps, sigma, rcut float64) Potential {
	return refpot.NewLennardJones(eps, sigma, rcut)
}

// Training.

// Frame is one labeled training configuration.
type Frame = train.Frame

// TrainConfig sets optimizer hyper-parameters.
type TrainConfig = train.Config

// Trainer minimizes the per-atom energy loss over a dataset.
type Trainer = train.Trainer

// NewTrainer prepares a trainer for the model.
func NewTrainer(model *Model, cfg TrainConfig) (*Trainer, error) {
	return train.NewTrainer(model, cfg)
}

// Active learning (the DP-GEN concurrent-learning loop, cmd/dplearn).

// LearnConfig drives the active-learning loop: ensemble size, exploration
// MD, ε_f trust thresholds, harvest budget, training hyper-parameters.
type LearnConfig = learn.Config

// LearnReport is the machine-readable per-round convergence report.
type LearnReport = learn.Report

// Labeler produces reference energy/force labels for harvested frames —
// the seam where DP-GEN submits configurations to DFT.
type Labeler = learn.Labeler

// NewReferenceLabeler wraps an analytic reference potential as a Labeler.
func NewReferenceLabeler(pot Potential, spec NeighborSpec, workers int) Labeler {
	return refpot.NewLabeler(pot, spec, workers)
}

// RunActiveLearning closes the concurrent-learning loop around base:
// train an ensemble of replicas, explore with MD, bucket frames by force
// model deviation, harvest and label the uncertain ones, retrain, iterate
// until the candidate fraction collapses. Velocities and masses of base
// are ignored (exploration draws fresh Boltzmann velocities; masses come
// from cfg.Model.Masses).
func RunActiveLearning(cfg LearnConfig, base *System, labeler Labeler) (*LearnReport, error) {
	return learn.Run(cfg, &lattice.System{Pos: base.Pos, Types: base.Types, Box: base.Box}, labeler)
}

// Analysis.

// RDF accumulates a radial distribution function.
type RDF = analysis.RDF

// NewRDF prepares a g_AB(r) accumulator.
func NewRDF(typeA, typeB int, rmax float64, bins int) *RDF {
	return analysis.NewRDF(typeA, typeB, rmax, bins)
}

// CNA classifies atoms into fcc/hcp/other (Fig. 7) using workers
// goroutines for the underlying neighbor search.
func CNA(pos []float64, types []int, box *Box, rcut float64, workers int) ([]analysis.Structure, error) {
	return analysis.CNA(pos, types, box, rcut, workers)
}

// Performance model.

// Summit returns the paper's machine description.
func Summit() perfmodel.Machine { return perfmodel.Summit() }

// WaterPerfModel and CopperPerfModel return the calibrated per-system
// Summit performance models used for Figs. 5-6 and Tables 1/4.
func WaterPerfModel() perfmodel.SystemModel  { return perfmodel.WaterModel() }
func CopperPerfModel() perfmodel.SystemModel { return perfmodel.CopperModel() }
