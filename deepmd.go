// Package deepmd is a pure-Go reproduction of the optimized DeePMD-kit of
// "Pushing the limit of molecular dynamics with ab initio accuracy to 100
// million atoms with machine learning" (SC '20): Deep Potential molecular
// dynamics with the paper's data-layout, operator-fusion, mixed-precision
// and parallelization optimizations, plus everything needed to regenerate
// its evaluation — system builders, an MD engine, a message-passing
// runtime, training against analytic "ab initio" oracles, analysis
// (RDF/CNA) and a calibrated Summit performance model.
//
// This package is the facade: it re-exports the stable surface of the
// internal packages. Quick start:
//
//	cfg := deepmd.TinyConfig(2)
//	model, _ := deepmd.NewModel(cfg)
//	ev := deepmd.NewDoubleEvaluator(model)      // or NewMixedEvaluator
//	sys := deepmd.BuildWater(4, 4, 4, 1)        // 64 molecules
//	sim, _ := deepmd.NewSimulation(&md.System{...}, ev, deepmd.SimOptions{...})
//	sim.Run(500)
//
// See examples/ for complete programs and DESIGN.md / EXPERIMENTS.md for
// the experiment-by-experiment reproduction map.
package deepmd

import (
	"deepmd-go/internal/analysis"
	"deepmd-go/internal/core"
	"deepmd-go/internal/domain"
	"deepmd-go/internal/lattice"
	"deepmd-go/internal/md"
	"deepmd-go/internal/neighbor"
	"deepmd-go/internal/perfmodel"
	"deepmd-go/internal/refpot"
	"deepmd-go/internal/train"
	"deepmd-go/internal/units"
)

// Model configuration and construction.

// Config describes a Deep Potential model (cutoffs, sel, network widths).
type Config = core.Config

// Model holds the trained (or initialized) Deep Potential networks.
type Model = core.Model

// Result is one potential evaluation: energy, atomic energies, forces and
// the virial tensor.
type Result = core.Result

// NewModel constructs a model with freshly initialized weights.
func NewModel(cfg Config) (*Model, error) { return core.New(cfg) }

// LoadModel reads a model file written by Model.SaveFile.
func LoadModel(path string) (*Model, error) { return core.LoadFile(path) }

// WaterConfig is the paper's liquid-water model geometry (Sec. 6.1).
func WaterConfig() Config { return core.WaterConfig() }

// CopperConfig is the paper's copper model geometry (Sec. 6.1).
func CopperConfig() Config { return core.CopperConfig() }

// TinyConfig is a scaled-down model for experiments on small machines.
func TinyConfig(ntypes int) Config { return core.TinyConfig(ntypes) }

// Evaluators: the optimized pipeline in both precisions plus the 2018
// baseline execution strategy.

// Potential is anything that can compute energies and forces for the MD
// engine: DP evaluators, the baseline evaluator, and the reference
// potentials all implement it.
type Potential = md.Potential

// NewDoubleEvaluator runs the optimized pipeline in double precision.
func NewDoubleEvaluator(m *Model) *core.Evaluator[float64] {
	return core.NewEvaluator[float64](m)
}

// NewMixedEvaluator runs the optimized pipeline with single-precision
// network math between double-precision boundaries (Sec. 5.2.3).
func NewMixedEvaluator(m *Model) *core.Evaluator[float32] {
	return core.NewEvaluator[float32](m)
}

// NewBaselineEvaluator runs the 2018 serial DeePMD-kit execution strategy
// (unfused ops, AoS neighbor handling, per-call allocation).
func NewBaselineEvaluator(m *Model) *core.BaselineEvaluator {
	return core.NewBaselineEvaluator(m)
}

// MD engine.

// System is the mutable atomic state of a simulation.
type System = md.System

// SimOptions configures a serial simulation.
type SimOptions = md.Options

// Simulation drives one serial MD run.
type Simulation = md.Sim

// Thermo is one thermodynamic sample.
type Thermo = md.Thermo

// Thermostats: Berendsen (weak coupling), Rescale (hard), Langevin
// (stochastic, canonical-ensemble fluctuations).
type (
	Berendsen = md.Berendsen
	Rescale   = md.Rescale
	Langevin  = md.Langevin
)

// NewSimulation validates options and prepares a serial simulation.
func NewSimulation(sys *System, pot Potential, opt SimOptions) (*Simulation, error) {
	return md.NewSim(sys, pot, opt)
}

// NeighborSpec describes cutoff and skin requirements; SpecFor derives it
// from a model config.
type NeighborSpec = neighbor.Spec

// SpecFor returns the neighbor requirements of a model configuration.
func SpecFor(cfg Config) NeighborSpec {
	return neighbor.Spec{Rcut: cfg.Rcut, Skin: cfg.Skin, Sel: cfg.Sel}
}

// Box is an orthorhombic periodic box.
type Box = neighbor.Box

// NeighborList is a raw neighbor list consumed by Potential.Compute.
type NeighborList = neighbor.List

// BuildNeighborList constructs the periodic neighbor list of a system
// using workers goroutines (pass Config.Workers to keep the build in step
// with the parallel evaluator; <= 1 builds serially).
func BuildNeighborList(sys *System, spec NeighborSpec, workers int) (*NeighborList, error) {
	return neighbor.Build(spec, sys.Pos, sys.Types, sys.N(), &sys.Box, workers)
}

// Parallel (domain-decomposed) runs.

// ParallelOptions configures a domain-decomposed run over simulated ranks.
type ParallelOptions = domain.Options

// ParallelStats is the result of a parallel run.
type ParallelStats = domain.Stats

// RunParallel executes a domain-decomposed simulation (Sec. 5.4).
func RunParallel(sys *System, newPot func() Potential, opt ParallelOptions) (*ParallelStats, error) {
	return domain.Run(sys, newPot, opt)
}

// System builders.

// BuildWater places nx x ny x nz water molecules at liquid density with
// randomized orientations, returning a System with O/H types and masses.
func BuildWater(nx, ny, nz int, seed int64) *System {
	cell := lattice.Water(nx, ny, nz, lattice.WaterSpacing, seed)
	return &System{
		Pos:        cell.Pos,
		Types:      cell.Types,
		MassByType: []float64{units.MassO, units.MassH},
		Box:        cell.Box,
		Vel:        make([]float64, 3*cell.N()),
	}
}

// BuildCopper builds an FCC copper supercell (4*nx*ny*nz atoms).
func BuildCopper(nx, ny, nz int) *System {
	cell := lattice.FCC(nx, ny, nz, lattice.CuLatticeConst)
	return &System{
		Pos:        cell.Pos,
		Types:      cell.Types,
		MassByType: []float64{units.MassCu},
		Box:        cell.Box,
		Vel:        make([]float64, 3*cell.N()),
	}
}

// BuildNanocrystal builds a Schiotz-style nanocrystalline copper sample:
// ngrains randomly oriented Voronoi grains in a cubic box of edge l
// Angstrom (Fig. 7(a)).
func BuildNanocrystal(l float64, ngrains int, seed int64) *System {
	cell := lattice.Nanocrystal(l, ngrains, lattice.CuLatticeConst, 2.2, seed)
	return &System{
		Pos:        cell.Pos,
		Types:      cell.Types,
		MassByType: []float64{units.MassCu},
		Box:        cell.Box,
		Vel:        make([]float64, 3*cell.N()),
	}
}

// Reference potentials ("ab initio" oracles and EFF baselines).

// NewSuttonChenCu returns the Sutton-Chen EAM copper potential.
func NewSuttonChenCu() Potential { return refpot.NewSuttonChenCu() }

// NewToyWater returns the flexible three-site water oracle.
func NewToyWater() Potential { return refpot.NewToyWater() }

// NewLennardJones returns a single-species truncated-shifted LJ potential.
func NewLennardJones(eps, sigma, rcut float64) Potential {
	return refpot.NewLennardJones(eps, sigma, rcut)
}

// Training.

// Frame is one labeled training configuration.
type Frame = train.Frame

// TrainConfig sets optimizer hyper-parameters.
type TrainConfig = train.Config

// Trainer minimizes the per-atom energy loss over a dataset.
type Trainer = train.Trainer

// NewTrainer prepares a trainer for the model.
func NewTrainer(model *Model, cfg TrainConfig) (*Trainer, error) {
	return train.NewTrainer(model, cfg)
}

// Analysis.

// RDF accumulates a radial distribution function.
type RDF = analysis.RDF

// NewRDF prepares a g_AB(r) accumulator.
func NewRDF(typeA, typeB int, rmax float64, bins int) *RDF {
	return analysis.NewRDF(typeA, typeB, rmax, bins)
}

// CNA classifies atoms into fcc/hcp/other (Fig. 7) using workers
// goroutines for the underlying neighbor search.
func CNA(pos []float64, types []int, box *Box, rcut float64, workers int) ([]analysis.Structure, error) {
	return analysis.CNA(pos, types, box, rcut, workers)
}

// Performance model.

// Summit returns the paper's machine description.
func Summit() perfmodel.Machine { return perfmodel.Summit() }

// WaterPerfModel and CopperPerfModel return the calibrated per-system
// Summit performance models used for Figs. 5-6 and Tables 1/4.
func WaterPerfModel() perfmodel.SystemModel  { return perfmodel.WaterModel() }
func CopperPerfModel() perfmodel.SystemModel { return perfmodel.CopperModel() }
